"""The fronthaul flight recorder: metrics, tracing, deadline accounting.

RANBooster middleboxes "expose monitoring and management interfaces ...
to send telemetry data to applications" (Section 3.2).  This package is
that layer made first-class:

- :mod:`repro.obs.metrics` — Counter/Gauge/Histogram registry with label
  sets and atomic snapshots;
- :mod:`repro.obs.recorder` — per-packet span traces keyed by
  ``(eAxC, frame/slot/symbol, direction, seq)`` in a bounded ring,
  exportable as JSONL and Chrome ``trace_event`` JSON;
- :mod:`repro.obs.exposition` — Prometheus text / JSON / plain-text
  dashboard renderers;
- :mod:`repro.obs.deadline` — per-slot modelled latency vs the O-RAN
  symbol-timing windows (the observable Figure 15a);
- :mod:`repro.obs.sketch` — mergeable DDSketch-style quantile sketches,
  the registry's fourth metric kind (cross-shard percentiles without
  raw arrays);
- :mod:`repro.obs.stream` — the streaming telemetry plane: per-epoch
  worker flushes folded live by the coordinator;
- :mod:`repro.obs.slo` — declarative SLOs with sliding-window burn-rate
  alerting over the stream;
- :mod:`repro.obs.live` — live terminal/Prometheus/JSONL views over a
  telemetry stream (``python -m repro.eval obs-top``).

The whole datapath (middleboxes, chains, the embedded switch, the event
engine, the four reference apps) is instrumented against one
:class:`Observability` handle.  **Disabled is the default and must stay
near-free**: every instrumentation site guards on ``obs.enabled`` — a
single attribute read — before touching the registry or recorder, and
the overhead is pinned by ``benchmarks/test_obs_overhead.py``.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.obs.deadline import (
    DeadlineAccountant,
    SLOT_BUDGET_NS,
    SlotAccount,
    account_middleboxes,
)
from repro.obs.exposition import (
    render_dashboard,
    render_json,
    render_prometheus,
)
from repro.obs.metrics import (
    Counter,
    DEFAULT_NS_BUCKETS,
    Gauge,
    Histogram,
    MetricMergeError,
    MetricsRegistry,
)
from repro.obs.recorder import FlightRecorder, PacketSpan, SpanEvent, SpanKey
from repro.obs.sketch import (
    DEFAULT_RELATIVE_ACCURACY,
    QuantileSketch,
    Sketch,
    SketchMergeError,
)
from repro.obs.slo import (
    EpochSample,
    SloAlert,
    SloEngine,
    SloSpec,
    default_slos,
)
from repro.obs.stream import GroupStreamSource, TelemetryStream
from repro.obs.live import (
    deterministic_exposition,
    render_journeys,
    render_live,
    render_stream_prometheus,
)


class Observability:
    """One handle bundling the registry, the recorder, and the switch.

    ``enabled`` is the master switch every instrumentation site checks
    first; with it False the datapath pays one attribute read per packet.
    ``sample_every`` decimates span recording (metrics always count every
    packet once enabled; spans can be sampled because they are the
    expensive part).  ``clock`` returns integer nanoseconds and is
    injectable so golden tests produce deterministic traces.
    """

    __slots__ = (
        "enabled",
        "registry",
        "recorder",
        "sample_every",
        "sketch_accuracy",
        "clock",
        "_ticket",
    )

    def __init__(
        self,
        enabled: bool = False,
        registry: Optional[MetricsRegistry] = None,
        recorder: Optional[FlightRecorder] = None,
        sample_every: int = 1,
        max_spans: Optional[int] = None,
        sketch_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
        clock=time.perf_counter_ns,
    ):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.enabled = enabled
        self.registry = registry if registry is not None else MetricsRegistry()
        if recorder is None:
            recorder = FlightRecorder(
                capacity=max_spans if max_spans is not None else 4096,
                clock=clock,
            )
        elif max_spans is not None and recorder.capacity != max_spans:
            raise ValueError(
                "max_spans conflicts with the provided recorder's capacity"
            )
        self.recorder = recorder
        self.sample_every = sample_every
        self.sketch_accuracy = sketch_accuracy
        self.clock = clock
        self._ticket = 0

    def enable(self) -> "Observability":
        self.enabled = True
        return self

    def disable(self) -> "Observability":
        self.enabled = False
        return self

    def should_sample(self) -> bool:
        """Span-sampling decision: every ``sample_every``-th packet."""
        self._ticket += 1
        if self.sample_every == 1:
            return True
        return self._ticket % self.sample_every == 1

    def reset(self) -> None:
        """Drop all collected series and spans (between experiment runs)."""
        self.registry.clear()
        self.recorder.clear()
        self._ticket = 0


#: The module-level default handle: instrumented components fall back to
#: this when not given their own.  Disabled by default — production-off,
#: like a real flight recorder armed only when asked.
DEFAULT_OBSERVABILITY = Observability(enabled=False)


def get_observability() -> Observability:
    return DEFAULT_OBSERVABILITY


def enable(sample_every: int = 1) -> Observability:
    """Arm the default handle (convenience for scripts and examples)."""
    DEFAULT_OBSERVABILITY.sample_every = sample_every
    return DEFAULT_OBSERVABILITY.enable()


def disable() -> Observability:
    return DEFAULT_OBSERVABILITY.disable()


__all__ = [
    "Counter",
    "DEFAULT_NS_BUCKETS",
    "DEFAULT_OBSERVABILITY",
    "DEFAULT_RELATIVE_ACCURACY",
    "DeadlineAccountant",
    "EpochSample",
    "FlightRecorder",
    "Gauge",
    "GroupStreamSource",
    "Histogram",
    "MetricMergeError",
    "MetricsRegistry",
    "Observability",
    "PacketSpan",
    "QuantileSketch",
    "SLOT_BUDGET_NS",
    "Sketch",
    "SketchMergeError",
    "SloAlert",
    "SloEngine",
    "SloSpec",
    "SlotAccount",
    "SpanEvent",
    "SpanKey",
    "TelemetryStream",
    "account_middleboxes",
    "default_slos",
    "deterministic_exposition",
    "disable",
    "enable",
    "get_observability",
    "render_dashboard",
    "render_journeys",
    "render_json",
    "render_live",
    "render_prometheus",
    "render_stream_prometheus",
]
