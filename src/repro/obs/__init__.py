"""The fronthaul flight recorder: metrics, tracing, deadline accounting.

RANBooster middleboxes "expose monitoring and management interfaces ...
to send telemetry data to applications" (Section 3.2).  This package is
that layer made first-class:

- :mod:`repro.obs.metrics` — Counter/Gauge/Histogram registry with label
  sets and atomic snapshots;
- :mod:`repro.obs.recorder` — per-packet span traces keyed by
  ``(eAxC, frame/slot/symbol, direction, seq)`` in a bounded ring,
  exportable as JSONL and Chrome ``trace_event`` JSON;
- :mod:`repro.obs.exposition` — Prometheus text / JSON / plain-text
  dashboard renderers;
- :mod:`repro.obs.deadline` — per-slot modelled latency vs the O-RAN
  symbol-timing windows (the observable Figure 15a).

The whole datapath (middleboxes, chains, the embedded switch, the event
engine, the four reference apps) is instrumented against one
:class:`Observability` handle.  **Disabled is the default and must stay
near-free**: every instrumentation site guards on ``obs.enabled`` — a
single attribute read — before touching the registry or recorder, and
the overhead is pinned by ``benchmarks/test_obs_overhead.py``.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.obs.deadline import (
    DeadlineAccountant,
    SLOT_BUDGET_NS,
    SlotAccount,
    account_middleboxes,
)
from repro.obs.exposition import (
    render_dashboard,
    render_json,
    render_prometheus,
)
from repro.obs.metrics import (
    Counter,
    DEFAULT_NS_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.recorder import FlightRecorder, PacketSpan, SpanEvent, SpanKey


class Observability:
    """One handle bundling the registry, the recorder, and the switch.

    ``enabled`` is the master switch every instrumentation site checks
    first; with it False the datapath pays one attribute read per packet.
    ``sample_every`` decimates span recording (metrics always count every
    packet once enabled; spans can be sampled because they are the
    expensive part).  ``clock`` returns integer nanoseconds and is
    injectable so golden tests produce deterministic traces.
    """

    __slots__ = (
        "enabled",
        "registry",
        "recorder",
        "sample_every",
        "clock",
        "_ticket",
    )

    def __init__(
        self,
        enabled: bool = False,
        registry: Optional[MetricsRegistry] = None,
        recorder: Optional[FlightRecorder] = None,
        sample_every: int = 1,
        clock=time.perf_counter_ns,
    ):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.enabled = enabled
        self.registry = registry if registry is not None else MetricsRegistry()
        self.recorder = (
            recorder if recorder is not None else FlightRecorder(clock=clock)
        )
        self.sample_every = sample_every
        self.clock = clock
        self._ticket = 0

    def enable(self) -> "Observability":
        self.enabled = True
        return self

    def disable(self) -> "Observability":
        self.enabled = False
        return self

    def should_sample(self) -> bool:
        """Span-sampling decision: every ``sample_every``-th packet."""
        self._ticket += 1
        if self.sample_every == 1:
            return True
        return self._ticket % self.sample_every == 1

    def reset(self) -> None:
        """Drop all collected series and spans (between experiment runs)."""
        self.registry.clear()
        self.recorder.clear()
        self._ticket = 0


#: The module-level default handle: instrumented components fall back to
#: this when not given their own.  Disabled by default — production-off,
#: like a real flight recorder armed only when asked.
DEFAULT_OBSERVABILITY = Observability(enabled=False)


def get_observability() -> Observability:
    return DEFAULT_OBSERVABILITY


def enable(sample_every: int = 1) -> Observability:
    """Arm the default handle (convenience for scripts and examples)."""
    DEFAULT_OBSERVABILITY.sample_every = sample_every
    return DEFAULT_OBSERVABILITY.enable()


def disable() -> Observability:
    return DEFAULT_OBSERVABILITY.disable()


__all__ = [
    "Counter",
    "DEFAULT_NS_BUCKETS",
    "DEFAULT_OBSERVABILITY",
    "DeadlineAccountant",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "PacketSpan",
    "SLOT_BUDGET_NS",
    "SlotAccount",
    "SpanEvent",
    "SpanKey",
    "account_middleboxes",
    "disable",
    "enable",
    "get_observability",
    "render_dashboard",
    "render_json",
    "render_prometheus",
]
