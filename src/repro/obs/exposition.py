"""Exposition: render a metrics registry for humans and scrapers.

Three views over one :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`:

- :func:`render_prometheus` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` / samples), what a real deployment would serve
  on ``/metrics``;
- :func:`render_json` — the full snapshot as JSON for programmatic
  consumers (the management-plane "telemetry to applications" interface
  of Section 3.2);
- :func:`render_dashboard` — a plain-text operator dashboard (counter /
  gauge tables plus histogram summaries), which
  ``examples/prb_dashboard.py`` renders live.

All output is deterministic (families and label sets sorted), so golden
tests pin exact bytes.
"""

from __future__ import annotations

import json
from typing import Any, List, Tuple

from repro.obs.metrics import MetricsRegistry


def _format_value(value: float) -> str:
    """Prometheus-style number: integers bare, floats as reprs."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _label_str(names: List[str], values: Tuple[str, ...], extra: str = "") -> str:
    parts = [f'{name}="{value}"' for name, value in zip(names, values)]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


#: Quantiles a sketch family exposes (Prometheus summary convention).
SKETCH_QUANTILES = (0.5, 0.9, 0.95, 0.99)


def render_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text format, families name-sorted, label sets sorted.

    Sketch families render as summaries: one ``{quantile="..."}`` sample
    per entry of :data:`SKETCH_QUANTILES`, plus ``_sum`` and ``_count``.
    """
    lines: List[str] = []
    for family in registry.families():
        lines.append(f"# HELP {family.name} {family.help_text}")
        prom_type = (
            "summary" if family.metric_type == "sketch"
            else family.metric_type
        )
        lines.append(f"# TYPE {family.name} {prom_type}")
        names = list(family.label_names)
        for values in sorted(family.children()):
            child = family.children()[values]
            if family.metric_type == "sketch":
                for q in SKETCH_QUANTILES:
                    q_label = f'quantile="{_format_value(q)}"'
                    lines.append(
                        f"{family.name}"
                        f"{_label_str(names, values, q_label)}"
                        f" {_format_value(child.quantile(q))}"
                    )
                lines.append(
                    f"{family.name}_sum{_label_str(names, values)}"
                    f" {_format_value(child.sum)}"
                )
                lines.append(
                    f"{family.name}_count{_label_str(names, values)}"
                    f" {child.count}"
                )
            elif family.metric_type == "histogram":
                for bound, cumulative in child.cumulative_buckets():
                    le = "+Inf" if bound == float("inf") else _format_value(bound)
                    le_label = 'le="' + le + '"'
                    lines.append(
                        f"{family.name}_bucket"
                        f"{_label_str(names, values, le_label)}"
                        f" {cumulative}"
                    )
                lines.append(
                    f"{family.name}_sum{_label_str(names, values)}"
                    f" {_format_value(child.sum)}"
                )
                lines.append(
                    f"{family.name}_count{_label_str(names, values)}"
                    f" {child.count}"
                )
            else:
                lines.append(
                    f"{family.name}{_label_str(names, values)}"
                    f" {_format_value(child.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def render_json(registry: MetricsRegistry, indent: int = 2) -> str:
    """The atomic snapshot as JSON (sorted keys, stable across runs)."""
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=True)


def _series_rows(family) -> List[Tuple[str, Any]]:
    rows = []
    names = list(family.label_names)
    for values in sorted(family.children()):
        child = family.children()[values]
        label = ",".join(
            f"{name}={value}" for name, value in zip(names, values)
        )
        rows.append((label or "-", child))
    return rows


def render_dashboard(registry: MetricsRegistry, title: str = "fronthaul observability") -> str:
    """Operator-facing plain-text dashboard of every registered series."""
    width = 72
    lines = ["=" * width, title.center(width), "=" * width]
    counters, gauges, histograms, sketches = [], [], [], []
    for family in registry.families():
        bucket = {
            "counter": counters, "gauge": gauges,
            "histogram": histograms, "sketch": sketches,
        }[family.metric_type]
        bucket.append(family)

    def emit_scalar_section(heading: str, families) -> None:
        if not families:
            return
        lines.append("")
        lines.append(heading)
        lines.append("-" * width)
        for family in families:
            for label, child in _series_rows(family):
                name = family.name if label == "-" else f"{family.name}{{{label}}}"
                lines.append(f"  {name:<54} {_format_value(child.value):>14}")

    emit_scalar_section("counters", counters)
    emit_scalar_section("gauges", gauges)
    if histograms:
        lines.append("")
        lines.append("histograms")
        lines.append("-" * width)
        lines.append(
            f"  {'series':<44} {'count':>7} {'mean':>11} {'sum':>11}"
        )
        for family in histograms:
            for label, child in _series_rows(family):
                name = family.name if label == "-" else f"{family.name}{{{label}}}"
                lines.append(
                    f"  {name:<44} {child.count:>7}"
                    f" {child.mean():>11.1f} {child.sum:>11.1f}"
                )
    if sketches:
        lines.append("")
        lines.append("sketches")
        lines.append("-" * width)
        lines.append(
            f"  {'series':<40} {'count':>7} {'p50':>10} {'p99':>10}"
        )
        for family in sketches:
            for label, child in _series_rows(family):
                name = family.name if label == "-" else f"{family.name}{{{label}}}"
                lines.append(
                    f"  {name:<40} {child.count:>7}"
                    f" {child.quantile(0.5):>10.1f}"
                    f" {child.quantile(0.99):>10.1f}"
                )
    lines.append("=" * width)
    return "\n".join(lines)
