"""Per-packet flight recorder: span traces in a bounded ring buffer.

Each packet that traverses an instrumented middlebox leaves one
:class:`PacketSpan` keyed by the fronthaul coordinates that identify the
frame on the wire — ``(eAxC, frame/subframe/slot/symbol, direction,
seq)`` — carrying the per-action event list (kind, modelled cost,
kernel/userspace location) plus the measured Python wall time.  The ring
buffer bounds memory on long runs: the recorder always holds the most
recent ``capacity`` spans, like a crash-survivable flight recorder loop.

Exports: JSONL (one span per line, grep/jq-able) and the Chrome
``trace_event`` format, so a run can be dropped straight into
``chrome://tracing`` / Perfetto with one span per middlebox track.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True, slots=True)
class SpanKey:
    """The wire identity of one fronthaul frame.

    ``group``/``shard`` locate where the span was *recorded* (coupling
    group name, worker shard index); they default to the unsharded
    single-process identity so instrumentation sites never need to know
    about sharding — the streaming layer stamps them at ship time.  The
    wire coordinates alone (:meth:`wire_key`) identify the frame, so a
    packet journey reassembles across shards.
    """

    eaxc: int
    frame: int
    subframe: int
    slot: int
    symbol: int
    direction: str  # "DL" / "UL"
    seq: int
    group: str = ""
    shard: int = -1

    def slot_key(self) -> Tuple[int, int, int]:
        return (self.frame, self.subframe, self.slot)

    def wire_key(self) -> Tuple[int, int, int, int, int, str, int]:
        """The frame's wire coordinates, independent of where it was
        recorded — the join key for cross-shard packet journeys."""
        return (
            self.eaxc, self.frame, self.subframe, self.slot,
            self.symbol, self.direction, self.seq,
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "eaxc": self.eaxc,
            "frame": self.frame,
            "subframe": self.subframe,
            "slot": self.slot,
            "symbol": self.symbol,
            "direction": self.direction,
            "seq": self.seq,
            "group": self.group,
            "shard": self.shard,
        }


@dataclass(frozen=True, slots=True)
class SpanEvent:
    """One action inside a span: kind, modelled cost, execution location."""

    kind: str
    cost_ns: float
    location: str


@dataclass(slots=True)
class PacketSpan:
    """One packet's traversal of one middlebox."""

    key: SpanKey
    middlebox: str
    traffic_class: str
    modeled_ns: float
    wall_ns: float
    start_ns: int
    events: Tuple[SpanEvent, ...] = ()
    emitted: int = 0
    dropped: bool = False
    stage: int = 0  # position in the middlebox chain (0 = first)

    def as_dict(self) -> Dict[str, Any]:
        record = self.key.as_dict()
        record.update(
            {
                "middlebox": self.middlebox,
                "class": self.traffic_class,
                "stage": self.stage,
                "modeled_ns": round(self.modeled_ns, 3),
                "wall_ns": round(self.wall_ns, 3),
                "start_ns": self.start_ns,
                "emitted": self.emitted,
                "dropped": self.dropped,
                "events": [
                    {
                        "kind": event.kind,
                        "cost_ns": round(event.cost_ns, 3),
                        "location": event.location,
                    }
                    for event in self.events
                ],
            }
        )
        return record


@dataclass
class FlightRecorder:
    """Bounded ring of :class:`PacketSpan` records.

    ``clock`` returns integer nanoseconds; tests inject a fake for
    deterministic golden traces.  ``capacity`` bounds memory: the ring
    keeps the newest spans and ``evicted`` counts how many rolled off.
    """

    capacity: int = 4096
    clock: Callable[[], int] = time.perf_counter_ns
    _spans: Deque[PacketSpan] = field(init=False, repr=False)
    evicted: int = field(init=False, default=0)
    _recorded: int = field(init=False, default=0)
    _drained: int = field(init=False, default=0)
    _drained_evicted: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")
        self._spans = deque(maxlen=self.capacity)

    def now(self) -> int:
        return self.clock()

    def record(self, span: PacketSpan) -> None:
        if len(self._spans) == self.capacity:
            self.evicted += 1
        self._spans.append(span)
        self._recorded += 1

    def spans(self) -> List[PacketSpan]:
        return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def clear(self) -> None:
        self._spans.clear()
        self.evicted = 0
        self._recorded = 0
        self._drained = 0
        self._drained_evicted = 0

    def drain(self) -> Tuple[List[PacketSpan], int]:
        """Spans recorded since the last drain, plus the dropped count.

        The streaming telemetry plane calls this at every epoch boundary:
        the first element is every still-retained span recorded since the
        previous drain (oldest first), the second counts spans recorded in
        the interval that rolled off the ring before this drain could ship
        them — losses the consumer never saw.  Evicting a span that a
        previous drain already delivered is not a loss and is not counted.
        Never re-delivers a span.
        """
        fresh = min(self._recorded - self._drained, len(self._spans))
        spans = list(self._spans)[-fresh:] if fresh else []
        dropped = (self._recorded - self._drained) - fresh
        self._drained = self._recorded
        self._drained_evicted = self.evicted
        return spans, dropped

    # -- queries -------------------------------------------------------------

    def find(
        self,
        middlebox: Optional[str] = None,
        direction: Optional[str] = None,
        traffic_class: Optional[str] = None,
        slot_key: Optional[Tuple[int, int, int]] = None,
        dropped: Optional[bool] = None,
    ) -> List[PacketSpan]:
        """Filter retained spans by any combination of coordinates."""
        out = []
        for span in self._spans:
            if middlebox is not None and span.middlebox != middlebox:
                continue
            if direction is not None and span.key.direction != direction:
                continue
            if traffic_class is not None and span.traffic_class != traffic_class:
                continue
            if slot_key is not None and span.key.slot_key() != slot_key:
                continue
            if dropped is not None and span.dropped != dropped:
                continue
            out.append(span)
        return out

    def packet_journey(self, key: SpanKey) -> List[PacketSpan]:
        """Every retained span of one wire frame, in chain-stage order —
        the per-packet latency propagation view across a middlebox chain.

        Matches on :meth:`SpanKey.wire_key` so the journey reassembles
        even when its spans were recorded on different shards (the
        streaming fold stamps ``group``/``shard`` onto each key)."""
        wire = key.wire_key()
        return sorted(
            (s for s in self._spans if s.key.wire_key() == wire),
            key=lambda s: (s.stage, s.start_ns, s.key.shard),
        )

    # -- exports -------------------------------------------------------------

    def to_jsonl(self, spans: Optional[Iterable[PacketSpan]] = None) -> str:
        """One JSON object per line, oldest span first."""
        selected = self._spans if spans is None else spans
        return "\n".join(
            json.dumps(span.as_dict(), sort_keys=True) for span in selected
        )

    def to_chrome_trace(
        self, spans: Optional[Iterable[PacketSpan]] = None
    ) -> str:
        """Chrome ``trace_event`` JSON: one complete ("X") event per span.

        Tracks (tid) are middlebox names; timestamps are microseconds as
        the format requires.  Load via ``chrome://tracing`` or Perfetto.
        """
        selected = list(self._spans if spans is None else spans)
        tids = {
            name: index
            for index, name in enumerate(
                sorted({span.middlebox for span in selected})
            )
        }
        events: List[Dict[str, Any]] = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": name},
            }
            for name, tid in sorted(tids.items(), key=lambda kv: kv[1])
        ]
        for span in selected:
            events.append(
                {
                    "name": f"{span.traffic_class} {span.key.direction}",
                    "cat": span.middlebox,
                    "ph": "X",
                    "pid": 0,
                    "tid": tids[span.middlebox],
                    "ts": span.start_ns / 1000.0,
                    "dur": max(span.wall_ns, 1.0) / 1000.0,
                    "args": {
                        **span.key.as_dict(),
                        "modeled_ns": span.modeled_ns,
                        "emitted": span.emitted,
                        "dropped": span.dropped,
                        "actions": [event.kind for event in span.events],
                    },
                }
            )
        return json.dumps({"traceEvents": events}, sort_keys=True)
