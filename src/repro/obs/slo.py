"""SLO engine: declarative objectives, sliding windows, burn-rate alerts.

A middlebox operator serving tenants it does not control must *prove* it
stays inside the fronthaul timing budget (Section 6.4.1) — which means
objectives evaluated continuously against the live telemetry stream,
not a post-hoc log scrape.  This module is that evaluator:

- :class:`SloSpec` declares one objective over a named *measurable*
  (deadline-miss rate, P99 slot latency, conformance-violation rate,
  circuit-breaker opens) with a threshold and a sliding window measured
  in stream epochs.
- :class:`SloEngine` consumes one :class:`EpochSample` per stream epoch
  (the coordinator's fold builds it from the workers' payloads),
  maintains the per-objective windows, and computes the **burn rate** —
  observed value divided by threshold, the Google-SRE multiple of
  budget consumption.  Alerts are edge-triggered: one ``firing``
  :class:`SloAlert` when the burn rate crosses ``max_burn_rate`` upward,
  one ``resolved`` alert when it falls back — published on the
  :class:`~repro.core.telemetry.TelemetryBus` topic :data:`ALERT_TOPIC`
  and retained in :attr:`SloEngine.alerts`.

P99 latency is evaluated over the *window's* merged
:class:`~repro.obs.sketch.QuantileSketch` — per-epoch sketch samples
merge exactly, so the windowed percentile is as accurate as a
single-process one regardless of sharding.

Everything is plain data and deterministic: the same epoch samples in
the same order produce byte-identical alert sequences, which is what
lets CI assert "this seeded chaos run fires exactly this alert".
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.deadline import SLOT_BUDGET_NS
from repro.obs.sketch import QuantileSketch

#: Bus topic burn-rate alerts are published on.
ALERT_TOPIC = "obs.slo.alerts"

#: The measurables an :class:`SloSpec` may target.
OBJECTIVES = (
    "deadline_miss_rate",
    "p99_slot_latency_ns",
    "conformance_violation_rate",
    "breaker_opens",
    "worker_restarts",
)


@dataclass(frozen=True)
class SloSpec:
    """One declarative objective over the telemetry stream.

    ``threshold`` is the objective's budget (a rate in [0, 1] for the
    rate objectives, nanoseconds for latency, a count for breaker
    opens); the alert fires when the windowed measurement reaches
    ``threshold * max_burn_rate``.  ``window_epochs`` sizes the sliding
    window; ``min_samples`` suppresses alerts until the window has seen
    that many underlying events (slots or frames), so a one-slot blip
    at run start cannot page anyone.
    """

    name: str
    objective: str
    threshold: float
    window_epochs: int = 4
    max_burn_rate: float = 1.0
    min_samples: int = 1

    def __post_init__(self) -> None:
        if self.objective not in OBJECTIVES:
            raise ValueError(
                f"objective must be one of {OBJECTIVES}, "
                f"got {self.objective!r}"
            )
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        if self.window_epochs < 1:
            raise ValueError("window_epochs must be >= 1")
        if self.max_burn_rate <= 0:
            raise ValueError("max_burn_rate must be positive")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SloSpec":
        unknown = set(data) - set(cls.__dataclass_fields__)
        if unknown:
            raise KeyError(f"slo spec has unknown keys: {sorted(unknown)}")
        return cls(**data)


def default_slos(budget_ns: float = SLOT_BUDGET_NS) -> Tuple[SloSpec, ...]:
    """The paper-aligned objective set every streaming run gets for free."""
    return (
        SloSpec(
            name="deadline-miss-rate",
            objective="deadline_miss_rate",
            threshold=0.01,
        ),
        SloSpec(
            name="p99-slot-latency",
            objective="p99_slot_latency_ns",
            threshold=budget_ns,
        ),
        SloSpec(
            name="conformance-violation-rate",
            objective="conformance_violation_rate",
            threshold=0.01,
        ),
        SloSpec(
            name="breaker-opens",
            objective="breaker_opens",
            threshold=1.0,
        ),
    )


@dataclass(frozen=True)
class EpochSample:
    """What one stream epoch contributed, aggregated across shards."""

    epoch: int
    deadline_checks: int = 0
    deadline_misses: int = 0
    #: Sketch *sample* dict of per-slot total latencies this epoch
    #: (``None`` when the epoch carried no deadline accounts).
    slot_sketch: Optional[Dict[str, Any]] = None
    frames_checked: int = 0
    conformance_violations: int = 0
    breaker_opens: int = 0
    #: Pool workers the supervisor respawned while this epoch's barrier
    #: was being re-driven (self-healing scale-out; 0 on healthy runs).
    worker_restarts: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass(frozen=True)
class SloAlert:
    """One edge-triggered burn-rate transition."""

    slo: str
    objective: str
    state: str  # "firing" | "resolved"
    epoch: int
    value: float
    threshold: float
    burn_rate: float
    window_epochs: int

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def render(self) -> str:
        flame = "!!" if self.state == "firing" else "ok"
        return (
            f"[{flame}] {self.slo} {self.state} @epoch {self.epoch}: "
            f"{self.objective}={self.value:.6g} "
            f"(threshold {self.threshold:.6g}, "
            f"burn {self.burn_rate:.2f}x over {self.window_epochs} epochs)"
        )


class _Window:
    """Sliding window of the last N epoch samples for one spec."""

    def __init__(self, spec: SloSpec):
        self.spec = spec
        self.samples: List[EpochSample] = []
        self.firing = False

    def push(self, sample: EpochSample) -> None:
        self.samples.append(sample)
        if len(self.samples) > self.spec.window_epochs:
            del self.samples[: len(self.samples) - self.spec.window_epochs]

    def measure(self) -> Tuple[Optional[float], int]:
        """(windowed value, underlying event count) — value None if the
        objective is not measurable yet (no events in window)."""
        objective = self.spec.objective
        if objective == "deadline_miss_rate":
            checks = sum(s.deadline_checks for s in self.samples)
            if not checks:
                return None, 0
            misses = sum(s.deadline_misses for s in self.samples)
            return misses / checks, checks
        if objective == "p99_slot_latency_ns":
            merged: Optional[QuantileSketch] = None
            for sample in self.samples:
                if sample.slot_sketch is None:
                    continue
                if merged is None:
                    merged = QuantileSketch.from_sample(sample.slot_sketch)
                else:
                    merged.merge_sample(sample.slot_sketch)
            if merged is None or not merged.count:
                return None, 0
            return merged.quantile(0.99), merged.count
        if objective == "conformance_violation_rate":
            frames = sum(s.frames_checked for s in self.samples)
            if not frames:
                return None, 0
            violations = sum(s.conformance_violations for s in self.samples)
            return violations / frames, frames
        if objective == "worker_restarts":
            restarts = sum(s.worker_restarts for s in self.samples)
            return float(restarts), len(self.samples)
        # breaker_opens
        opens = sum(s.breaker_opens for s in self.samples)
        slots = sum(s.deadline_checks for s in self.samples)
        return float(opens), max(slots, len(self.samples))


class SloEngine:
    """Evaluate every spec against each epoch sample; emit alert edges."""

    def __init__(
        self,
        specs: Sequence[SloSpec] = (),
        bus=None,
        source: str = "slo-engine",
    ):
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names: {names}")
        self.specs: Tuple[SloSpec, ...] = tuple(specs)
        self.bus = bus
        self.source = source
        self._windows: List[_Window] = [_Window(spec) for spec in specs]
        #: Every alert edge, in emission order (firing and resolved).
        self.alerts: List[SloAlert] = []

    def observe_epoch(self, sample: EpochSample) -> List[SloAlert]:
        """Fold one epoch in; returns the alert edges it triggered."""
        edges: List[SloAlert] = []
        for window in self._windows:
            window.push(sample)
            value, events = window.measure()
            if value is None:
                continue
            spec = window.spec
            burn = value / spec.threshold
            should_fire = (
                burn >= spec.max_burn_rate and events >= spec.min_samples
            )
            if should_fire == window.firing:
                continue
            window.firing = should_fire
            alert = SloAlert(
                slo=spec.name,
                objective=spec.objective,
                state="firing" if should_fire else "resolved",
                epoch=sample.epoch,
                value=value,
                threshold=spec.threshold,
                burn_rate=burn,
                window_epochs=spec.window_epochs,
            )
            edges.append(alert)
            self.alerts.append(alert)
            if self.bus is not None:
                self.bus.publish(
                    ALERT_TOPIC,
                    alert.to_dict(),
                    timestamp_ns=float(sample.epoch),
                    source=self.source,
                )
        return edges

    def firing(self) -> List[str]:
        """Names of the SLOs currently in the firing state."""
        return [w.spec.name for w in self._windows if w.firing]

    def status(self) -> List[Dict[str, Any]]:
        """Per-SLO live state (the dashboard's objective table)."""
        rows = []
        for window in self._windows:
            value, events = window.measure()
            spec = window.spec
            rows.append(
                {
                    "slo": spec.name,
                    "objective": spec.objective,
                    "threshold": spec.threshold,
                    "value": value,
                    "burn_rate": (
                        value / spec.threshold if value is not None else None
                    ),
                    "events": events,
                    "window_epochs": spec.window_epochs,
                    "firing": window.firing,
                }
            )
        return rows


__all__ = [
    "ALERT_TOPIC",
    "OBJECTIVES",
    "EpochSample",
    "SloAlert",
    "SloEngine",
    "SloSpec",
    "default_slos",
]
