"""Mergeable quantile sketches: cross-shard percentiles without raw arrays.

A :class:`QuantileSketch` is a DDSketch-style relative-error sketch
(Masson, Rim & Lee, VLDB 2019): values land in logarithmically spaced
buckets ``index = ceil(log_gamma(value))`` with
``gamma = (1 + alpha) / (1 - alpha)``, so any quantile read back from the
sketch is within a factor ``alpha`` of the true value — regardless of
how many observations were folded in or on how many shards they were
collected.  That guarantee is exactly what the streaming telemetry plane
needs: every worker keeps a small dict of bucket counts, ships per-epoch
deltas, and the coordinator's fold answers "cross-shard P99 slot latency
vs the 30 us budget" without a single raw latency array crossing a pipe.

Algebraic contract (pinned by Hypothesis property tests):

- ``merge`` is associative and commutative: any fold order over any
  sharding of the observations yields the *same* sketch state.
- ``quantile(q)`` is within ``relative_accuracy`` of the exact sample
  quantile for every q in [0, 1] (zero and the min/max are exact).
- ``sample()``/``from_sample`` round-trip exactly through JSON, and
  ``diff_sample`` produces a delta whose fold reproduces the cumulative
  state — the same discipline histograms follow in
  :func:`repro.obs.metrics.diff_snapshot`.

Only non-negative values are accepted: every series this repo sketches
(latencies, slot budgets, failover times) is a duration.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional, Tuple

#: Default relative accuracy: quantiles within 1% of the true value.
DEFAULT_RELATIVE_ACCURACY = 0.01

#: Values below this are counted in the exact zero bucket rather than a
#: log bucket (log of a denormal underflows long before this).
MIN_TRACKABLE = 1e-9


class SketchMergeError(ValueError):
    """Two sketches with incompatible accuracies cannot be merged."""


class QuantileSketch:
    """A mergeable relative-error quantile sketch over non-negative values."""

    __slots__ = (
        "relative_accuracy",
        "_gamma",
        "_log_gamma",
        "buckets",
        "zeros",
        "count",
        "sum",
        "min",
        "max",
    )

    def __init__(self, relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY):
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError(
                f"relative_accuracy must be in (0, 1), got {relative_accuracy}"
            )
        self.relative_accuracy = relative_accuracy
        self._gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
        self._log_gamma = math.log(self._gamma)
        #: log-bucket index -> observation count.
        self.buckets: Dict[int, int] = {}
        #: Exact count of observations below :data:`MIN_TRACKABLE`.
        self.zeros: int = 0
        self.count: int = 0
        self.sum: float = 0.0
        self.min: float = math.inf
        self.max: float = -math.inf

    # -- observation ---------------------------------------------------------

    def bucket_index(self, value: float) -> int:
        """The log-bucket a (trackable) value lands in."""
        return math.ceil(math.log(value) / self._log_gamma)

    def bucket_value(self, index: int) -> float:
        """The representative midpoint of one bucket: within
        ``relative_accuracy`` of every value mapped to it."""
        return 2.0 * self._gamma ** index / (self._gamma + 1.0)

    def observe(self, value: float, weight: int = 1) -> None:
        if value < 0:
            raise ValueError(f"sketch values must be non-negative, got {value}")
        if weight < 1:
            raise ValueError("observation weight must be >= 1")
        if value < MIN_TRACKABLE:
            self.zeros += weight
        else:
            index = self.bucket_index(value)
            self.buckets[index] = self.buckets.get(index, 0) + weight
        self.count += weight
        self.sum += value * weight
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    # -- reads ---------------------------------------------------------------

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The q-quantile (q in [0, 1]); 0.0 for an empty sketch.

        Exact at the extremes (tracked min/max), within the configured
        relative accuracy everywhere else.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        if q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        rank = q * (self.count - 1)
        seen = self.zeros
        if rank < seen:
            return 0.0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if rank < seen:
                # Clamp into the exact envelope so p~1 never exceeds max.
                return min(max(self.bucket_value(index), self.min), self.max)
        return self.max

    def percentile(self, p: float) -> float:
        """Convenience: :meth:`quantile` taking 0-100 instead of 0-1."""
        return self.quantile(p / 100.0)

    # -- algebra -------------------------------------------------------------

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold another sketch in; both must share one accuracy."""
        if other.relative_accuracy != self.relative_accuracy:
            raise SketchMergeError(
                f"cannot merge sketches of relative accuracy "
                f"{other.relative_accuracy} into {self.relative_accuracy}"
            )
        for index, bucket_count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + bucket_count
        self.zeros += other.zeros
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    # -- plain-data form -----------------------------------------------------

    def sample(self) -> Dict[str, Any]:
        """JSON-safe snapshot (the registry/stream wire form)."""
        return {
            "accuracy": self.relative_accuracy,
            "count": self.count,
            "sum": self.sum,
            "zeros": self.zeros,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": {
                str(index): self.buckets[index]
                for index in sorted(self.buckets)
            },
        }

    @classmethod
    def from_sample(cls, sample: Dict[str, Any]) -> "QuantileSketch":
        sketch = cls(relative_accuracy=sample["accuracy"])
        return sketch.merge_sample(sample)

    def merge_sample(self, sample: Dict[str, Any]) -> "QuantileSketch":
        """Fold one :meth:`sample` dict in (cross-shard snapshot merge)."""
        if sample["accuracy"] != self.relative_accuracy:
            raise SketchMergeError(
                f"cannot merge sketch sample of relative accuracy "
                f"{sample['accuracy']} into {self.relative_accuracy}"
            )
        for key, bucket_count in sample["buckets"].items():
            if bucket_count:
                index = int(key)
                self.buckets[index] = self.buckets.get(index, 0) + bucket_count
        self.zeros += sample["zeros"]
        self.count += sample["count"]
        self.sum += sample["sum"]
        if sample["min"] is not None:
            self.min = min(self.min, sample["min"])
        if sample["max"] is not None:
            self.max = max(self.max, sample["max"])
        return self

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuantileSketch(accuracy={self.relative_accuracy}, "
            f"count={self.count}, p50={self.quantile(0.5):.1f}, "
            f"p99={self.quantile(0.99):.1f})"
        )


def diff_sample(
    current: Dict[str, Any], previous: Dict[str, Any]
) -> Dict[str, Any]:
    """Per-epoch delta between two sketch samples.

    Bucket counts, ``count``, ``zeros`` and ``sum`` subtract; ``min`` and
    ``max`` carry the *running* extrema (merging is min/max, so folding
    every delta reproduces the cumulative state exactly — the same
    convention gauges use in :func:`repro.obs.metrics.diff_snapshot`).
    """
    if current["accuracy"] != previous["accuracy"]:
        raise SketchMergeError(
            "cannot diff sketch samples of accuracies "
            f"{current['accuracy']} and {previous['accuracy']}"
        )
    prev_buckets = previous["buckets"]
    buckets = {}
    for key, bucket_count in current["buckets"].items():
        delta = bucket_count - prev_buckets.get(key, 0)
        if delta:
            buckets[key] = delta
    return {
        "accuracy": current["accuracy"],
        "count": current["count"] - previous["count"],
        "sum": current["sum"] - previous["sum"],
        "zeros": current["zeros"] - previous["zeros"],
        "min": current["min"],
        "max": current["max"],
        "buckets": buckets,
    }


class Sketch:
    """The registry metric kind wrapping one labelled QuantileSketch.

    Registered next to Counter/Gauge/Histogram via
    :meth:`repro.obs.metrics.MetricsRegistry.sketch`; ``sample()`` is the
    snapshot form, which :meth:`~repro.obs.metrics.MetricsRegistry.
    merge_snapshot` folds additively like histogram buckets.
    """

    metric_type = "sketch"

    def __init__(
        self,
        parent,
        label_values: Tuple[str, ...],
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
    ):
        self._parent = parent
        self.label_values = label_values
        self.sketch = QuantileSketch(relative_accuracy=relative_accuracy)

    def observe(self, value: float) -> None:
        self.sketch.observe(value)

    def quantile(self, q: float) -> float:
        return self.sketch.quantile(q)

    def mean(self) -> float:
        return self.sketch.mean()

    @property
    def count(self) -> int:
        return self.sketch.count

    @property
    def sum(self) -> float:
        return self.sketch.sum

    def sample(self) -> Dict[str, Any]:
        return self.sketch.sample()


def merge_sketch_sample(child: Sketch, sample: Dict[str, Any]) -> None:
    """Fold one snapshot sketch sample into a live Sketch child."""
    child.sketch.merge_sample(sample)


__all__ = [
    "DEFAULT_RELATIVE_ACCURACY",
    "MIN_TRACKABLE",
    "QuantileSketch",
    "Sketch",
    "SketchMergeError",
    "diff_sample",
    "merge_sketch_sample",
]
