"""Deadline accounting: modelled middlebox latency vs O-RAN timing windows.

Fronthaul receive windows are symbol-scale (Section 2.2): a middlebox
chain that adds more processing latency than the per-slot budget makes
the DU/RU miss their windows.  Figure 15a does this analysis analytically
for the DAS middlebox; this module makes it *observable* — every slot of
a live run is checked against the budget and violations become counters
any scraper can alarm on.

The budget defaults to the paper's 30 us per-slot allowance and is capped
by the numerology's own symbol window (a chain slower than one symbol
duration can never keep up, regardless of allowance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.fronthaul.timing import Numerology
from repro.obs.sketch import DEFAULT_RELATIVE_ACCURACY, QuantileSketch

#: Paper budget for added middlebox processing per slot (Section 6.4.1).
SLOT_BUDGET_NS = 30_000.0


@dataclass(frozen=True)
class SlotAccount:
    """The latency account of one slot: per-stage and total modelled ns."""

    absolute_slot: int
    per_stage_ns: Dict[str, float]
    budget_ns: float

    @property
    def total_ns(self) -> float:
        return sum(self.per_stage_ns.values())

    @property
    def violated(self) -> bool:
        return self.total_ns > self.budget_ns

    @property
    def headroom_ns(self) -> float:
        return self.budget_ns - self.total_ns

    def to_wire(self) -> Dict[str, Any]:
        """Plain-data form for the streaming telemetry lane."""
        return {
            "slot": self.absolute_slot,
            "stages": dict(self.per_stage_ns),
            "budget_ns": self.budget_ns,
        }

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "SlotAccount":
        return cls(
            absolute_slot=data["slot"],
            per_stage_ns=dict(data["stages"]),
            budget_ns=data["budget_ns"],
        )


class DeadlineAccountant:
    """Per-slot latency budget checks over a middlebox chain.

    Feed it one :meth:`observe_slot` per processed slot (the simulator
    does this automatically when an accountant is attached to a
    :class:`~repro.sim.network_sim.FronthaulNetwork`); it keeps the
    per-slot accounts and, when an :class:`~repro.obs.Observability` is
    attached, emits ``fronthaul_deadline_checks_total`` /
    ``fronthaul_deadline_violations_total`` counters and a headroom gauge.
    """

    def __init__(
        self,
        numerology: Numerology = Numerology(mu=1),
        budget_ns: Optional[float] = None,
        obs=None,
        sketch_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
    ):
        self.numerology = numerology
        if budget_ns is None:
            # Paper allowance, never beyond the symbol receive window.
            budget_ns = min(SLOT_BUDGET_NS, numerology.symbol_duration_ns)
        self.budget_ns = budget_ns
        self.obs = obs
        self.accounts: List[SlotAccount] = []
        self.violations = 0
        #: Mergeable sketch of per-slot totals: percentiles survive the
        #: cross-shard fold without shipping the raw account list.
        self.latency_sketch = QuantileSketch(
            relative_accuracy=sketch_accuracy
        )

    def _book(self, account: SlotAccount) -> None:
        """The accounting common to direct and stream-fed observations."""
        self.accounts.append(account)
        if account.violated:
            self.violations += 1
        self.latency_sketch.observe(account.total_ns)

    def observe_slot(
        self, absolute_slot: int, per_stage_ns: Mapping[str, float]
    ) -> SlotAccount:
        """Check one slot's accumulated modelled latency against budget."""
        account = SlotAccount(
            absolute_slot=absolute_slot,
            per_stage_ns=dict(per_stage_ns),
            budget_ns=self.budget_ns,
        )
        self._book(account)
        obs = self.obs
        if obs is not None and obs.enabled:
            registry = obs.registry
            registry.counter(
                "fronthaul_deadline_checks_total",
                "slots checked against the fronthaul latency budget",
            ).inc()
            if account.violated:
                registry.counter(
                    "fronthaul_deadline_violations_total",
                    "slots whose modelled middlebox latency exceeded budget",
                ).inc()
            registry.gauge(
                "fronthaul_deadline_headroom_ns",
                "remaining latency budget of the most recent slot",
            ).set(account.headroom_ns)
            registry.sketch(
                "fronthaul_slot_total_ns",
                "per-slot modelled chain latency (mergeable sketch)",
                relative_accuracy=self.latency_sketch.relative_accuracy,
            ).observe(account.total_ns)
            stage_hist = registry.histogram(
                "fronthaul_stage_slot_ns",
                "per-slot modelled processing time by chain stage",
                labels=("stage",),
            )
            for stage, spent_ns in account.per_stage_ns.items():
                stage_hist.labels(stage).observe(spent_ns)
        return account

    def ingest(self, wire_accounts: Iterable[Dict[str, Any]]) -> int:
        """Fold stream-shipped accounts (:meth:`SlotAccount.to_wire`).

        Books exactly what :meth:`observe_slot` books — accounts list,
        violation count, latency sketch — but never touches the metrics
        registry: on the coordinator those series arrive through the
        folded metric deltas, and double-counting them here would break
        the live-equals-collect invariant.  Returns how many accounts
        were folded.
        """
        folded = 0
        for data in wire_accounts:
            self._book(SlotAccount.from_wire(data))
            folded += 1
        return folded

    # -- aggregate views -----------------------------------------------------

    def violation_rate(self) -> float:
        if not self.accounts:
            return 0.0
        return self.violations / len(self.accounts)

    def percentile(self, p: float) -> float:
        """Sketch-backed percentile (0-100) of per-slot total latency."""
        return self.latency_sketch.percentile(p)

    def worst_slot(self) -> Optional[SlotAccount]:
        if not self.accounts:
            return None
        return max(self.accounts, key=lambda account: account.total_ns)

    def stage_means_ns(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for account in self.accounts:
            for stage, spent_ns in account.per_stage_ns.items():
                totals[stage] = totals.get(stage, 0.0) + spent_ns
        n = len(self.accounts)
        return {stage: total / n for stage, total in totals.items()}

    def budget_report(self, title: str = "per-chain latency budget") -> str:
        """Figure 15a-style text report: per-stage means vs the budget."""
        lines = [title, "-" * max(len(title), 48)]
        means = self.stage_means_ns()
        cumulative = 0.0
        for stage in sorted(means):
            cumulative += means[stage]
            share = means[stage] / self.budget_ns
            lines.append(
                f"  {stage:<28} {means[stage] / 1000.0:>8.2f} us"
                f"  (cum {cumulative / 1000.0:>7.2f} us, {share:>5.1%} of budget)"
            )
        worst = self.worst_slot()
        lines.append(
            f"  {'budget (per slot)':<28} {self.budget_ns / 1000.0:>8.2f} us"
        )
        if worst is not None:
            lines.append(
                f"  worst slot {worst.absolute_slot}: "
                f"{worst.total_ns / 1000.0:.2f} us"
                f" ({'VIOLATED' if worst.violated else 'ok'})"
            )
        lines.append(
            f"  slots checked: {len(self.accounts)}, "
            f"violations: {self.violations} ({self.violation_rate():.1%})"
        )
        return "\n".join(lines)


def account_middleboxes(
    middleboxes: Sequence, previous_totals: Sequence[float]
) -> Dict[str, float]:
    """Per-stage modelled ns spent since ``previous_totals`` was sampled.

    Helper for slot loops: sample ``stats.processing_ns_total`` before the
    slot, call this after, feed the result to :meth:`observe_slot`.
    Stage names are made unique with their chain position so two
    same-named boxes don't merge.
    """
    per_stage: Dict[str, float] = {}
    for index, (middlebox, before_ns) in enumerate(
        zip(middleboxes, previous_totals)
    ):
        stage = f"{index}:{middlebox.name}"
        per_stage[stage] = middlebox.stats.processing_ns_total - before_ns
    return per_stage
