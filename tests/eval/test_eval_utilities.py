"""Tests for eval helpers: report formatting, wire sizing, the CLI."""


from repro.eval.fig15 import cplane_wire_bytes, uplane_wire_bytes
from repro.eval.report import format_table


class TestFormatTable:
    def test_alignment_and_header_rule(self):
        text = format_table(
            "Title", ("name", "value"), [("a", 1.0), ("longer", 23.456)]
        )
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert set(lines[2]) <= {"-", " "}
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # every row padded to the same width

    def test_float_formatting(self):
        text = format_table("t", ("x",), [(3.14159,)])
        assert "3.1" in text
        assert "3.14159" not in text

    def test_empty_rows(self):
        text = format_table("t", ("a", "b"), [])
        assert "a" in text and "b" in text


class TestWireSizes:
    def test_100mhz_uplane_frame_is_jumbo(self):
        """Section 5: 100 MHz cells generate packets > 7 KB; the estimate
        must match the real serialized size."""
        estimated = uplane_wire_bytes(273)
        assert estimated > 7_000
        # Compare against a real serialized frame.
        import numpy as np

        from repro.fronthaul.cplane import Direction
        from repro.fronthaul.ethernet import MacAddress
        from repro.fronthaul.packet import make_packet
        from repro.fronthaul.timing import SymbolTime
        from repro.fronthaul.uplane import UPlaneMessage, UPlaneSection

        section = UPlaneSection.from_samples(
            0, 0, np.zeros((273, 24), dtype=np.int16)
        )
        packet = make_packet(
            MacAddress.from_int(1), MacAddress.from_int(2),
            UPlaneMessage(direction=Direction.DOWNLINK,
                          time=SymbolTime(0, 0, 0, 0), sections=[section]),
        )
        assert estimated == packet.wire_size

    def test_40mhz_uplane_below_xdp_limit(self):
        from repro.core.datapath import XdpDatapath

        assert XdpDatapath().supports_frame(uplane_wire_bytes(106))
        assert not XdpDatapath().supports_frame(uplane_wire_bytes(273))

    def test_cplane_frame_small(self):
        assert cplane_wire_bytes() < 64


class TestEvalCli:
    def test_subset_runs(self, capsys):
        from repro.eval.__main__ import main

        assert main(["appendix_a2"]) == 0
        out = capsys.readouterr().out
        assert "appendix_a2" in out
        assert "CapEx" in out

    def test_unknown_experiment_rejected(self, capsys):
        from repro.eval.__main__ import main

        assert main(["figNaN"]) == 2
        assert "unknown experiments" in capsys.readouterr().out
