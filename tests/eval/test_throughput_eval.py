"""Analytic network evaluator tests."""

import pytest

from repro.eval.throughput import DeployedCell, UePlacement, evaluate_network
from repro.phy.channel import ChannelModel
from repro.phy.geometry import FloorPlan, Position
from repro.ran.cell import CellConfig
from repro.ran.ue import UserEquipment


@pytest.fixture
def plan():
    return FloorPlan()


@pytest.fixture
def channel():
    return ChannelModel(seed=99)


def make_ue(channel, position, suffix="001"):
    return UserEquipment(f"001010000000{suffix}", position, channel=channel)


class TestDeployedCell:
    def test_mode_validation(self, plan):
        with pytest.raises(ValueError):
            DeployedCell("x", CellConfig(pci=1), plan.ru_positions(0), [4] * 4,
                         mode="mesh")

    def test_single_mode_needs_one_ru(self, plan):
        with pytest.raises(ValueError):
            DeployedCell("x", CellConfig(pci=1), plan.ru_positions(0), [4] * 4,
                         mode="single")

    def test_overlap_detection(self, plan):
        ru = plan.ru_positions(0)[0]
        full = DeployedCell("a", CellConfig(pci=1), [ru], [4])
        other_band = DeployedCell(
            "b", CellConfig(pci=2, center_frequency_hz=3.7e9), [ru], [4]
        )
        co_channel = DeployedCell("c", CellConfig(pci=3), [ru], [4])
        assert not full.overlaps(other_band)
        assert full.overlaps(co_channel)

    def test_adjacent_carved_slices_do_not_overlap(self, plan):
        from repro.fronthaul.spectrum import PrbGrid, split_ru_spectrum

        ru = plan.ru_positions(0)[0]
        grid_a, grid_b = split_ru_spectrum(PrbGrid(3.46e9, 273), [106, 106])
        cells = [
            DeployedCell(
                name,
                CellConfig(pci=i, bandwidth_hz=40_000_000,
                           center_frequency_hz=grid.center_frequency_hz),
                [ru], [4],
            )
            for i, (name, grid) in enumerate([("a", grid_a), ("b", grid_b)])
        ]
        assert not cells[0].overlaps(cells[1])


class TestEvaluateNetwork:
    def test_capacity_bounds_throughput(self, plan, channel):
        cell = DeployedCell("c", CellConfig(pci=1), [plan.ru_positions(0)[0]],
                            [4])
        ue = make_ue(channel, Position(14, 10, 0))
        result = evaluate_network(
            [cell], [UePlacement(ue, "c", dl_offered_mbps=10_000)]
        )
        entry = result.ue(ue.imsi)
        assert entry.dl_mbps == pytest.approx(entry.dl_capacity_mbps)

    def test_light_load_fully_served(self, plan, channel):
        cell = DeployedCell("c", CellConfig(pci=1), [plan.ru_positions(0)[0]],
                            [4])
        ue = make_ue(channel, Position(14, 10, 0))
        result = evaluate_network(
            [cell], [UePlacement(ue, "c", dl_offered_mbps=50)]
        )
        assert result.ue(ue.imsi).dl_mbps == pytest.approx(50)

    def test_cell_sharing_scales_down(self, plan, channel):
        """Two saturating UEs split the cell roughly evenly."""
        ru = plan.ru_positions(0)[0]
        cell = DeployedCell("c", CellConfig(pci=1), [ru], [4])
        ues = [
            make_ue(channel, Position(ru.x + dx, ru.y, 0), suffix=f"10{i}")
            for i, dx in enumerate((2.0, -2.0))
        ]
        result = evaluate_network(
            [cell],
            [UePlacement(ue, "c", dl_offered_mbps=5_000) for ue in ues],
        )
        total = result.total_dl_mbps()
        shares = [r.dl_mbps / total for r in result.ues]
        assert all(0.3 < share < 0.7 for share in shares)
        assert total <= max(r.dl_capacity_mbps for r in result.ues) * 1.01

    def test_interference_coupling_reduces_capacity(self, plan, channel):
        rus = plan.ru_positions(0)
        cells = [
            DeployedCell(f"c{i}", CellConfig(pci=i + 1), [rus[i]], [4])
            for i in range(2)
        ]
        boundary = Position((rus[0].x + rus[1].x) / 2, rus[0].y, 0)
        victim = make_ue(channel, boundary, suffix="201")
        aggressor = make_ue(channel, Position(rus[1].x + 1, rus[1].y, 0),
                            suffix="202")
        quiet = evaluate_network(
            cells, [UePlacement(victim, "c0", dl_offered_mbps=2_000)]
        )
        loaded = evaluate_network(
            cells,
            [
                UePlacement(victim, "c0", dl_offered_mbps=2_000),
                UePlacement(aggressor, "c1", dl_offered_mbps=2_000),
            ],
        )
        assert (
            loaded.ue(victim.imsi).dl_capacity_mbps
            < quiet.ue(victim.imsi).dl_capacity_mbps
        )

    def test_non_overlapping_cells_do_not_interfere(self, plan, channel):
        rus = plan.ru_positions(0)
        cells = [
            DeployedCell(
                f"c{i}",
                CellConfig(pci=i + 1, bandwidth_hz=40_000_000,
                           center_frequency_hz=3.40e9 + i * 50_000_000),
                [rus[i]], [4],
            )
            for i in range(2)
        ]
        boundary = Position((rus[0].x + rus[1].x) / 2, rus[0].y, 0)
        victim = make_ue(channel, boundary, suffix="301")
        aggressor = make_ue(channel, Position(rus[1].x, rus[1].y + 1, 0),
                            suffix="302")
        alone = evaluate_network(
            cells, [UePlacement(victim, "c0", dl_offered_mbps=2_000)]
        )
        both = evaluate_network(
            cells,
            [
                UePlacement(victim, "c0", dl_offered_mbps=2_000),
                UePlacement(aggressor, "c1", dl_offered_mbps=2_000),
            ],
        )
        assert both.ue(victim.imsi).dl_capacity_mbps == pytest.approx(
            alone.ue(victim.imsi).dl_capacity_mbps, rel=0.01
        )

    def test_unknown_cell_rejected(self, plan, channel):
        cell = DeployedCell("c", CellConfig(pci=1), [plan.ru_positions(0)[0]],
                            [4])
        ue = make_ue(channel, Position(10, 10, 0))
        with pytest.raises(KeyError):
            evaluate_network([cell], [UePlacement(ue, "ghost", 100)])

    def test_activity_tracks_demand(self, plan, channel):
        cell = DeployedCell("c", CellConfig(pci=1), [plan.ru_positions(0)[0]],
                            [4])
        ue = make_ue(channel, Position(14, 10, 0))
        light = evaluate_network(
            [cell], [UePlacement(ue, "c", dl_offered_mbps=90)]
        )
        heavy = evaluate_network(
            [cell], [UePlacement(ue, "c", dl_offered_mbps=5_000)]
        )
        assert light.cell_activity["c"] < 0.5
        assert heavy.cell_activity["c"] == pytest.approx(1.0)
