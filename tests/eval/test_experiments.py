"""Experiment runners reproduce the paper's qualitative results.

One test per table/figure, asserting the *shape* claims of the evaluation
section (who wins, by roughly what factor, where crossovers fall) at
reduced experiment sizes; the benchmarks run the full versions.
"""

import numpy as np
import pytest

from repro.eval.appendix import run_cost_analysis, run_sharing_math
from repro.eval.fig10 import run_fig10a, run_fig10b, run_fig10c
from repro.eval.fig11 import run_fig11
from repro.eval.fig12 import run_fig12
from repro.eval.fig13 import run_fig13
from repro.eval.fig14 import run_fig14
from repro.eval.fig15 import run_fig15a, run_fig15b
from repro.eval.fig16 import run_fig16
from repro.eval.table2 import run_table2


class TestFig10a:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig10a()

    def test_das_matches_baseline(self, result):
        """DAS throughput equals the single-cell ideal (Figure 10a)."""
        assert result.das_simultaneous_dl_mbps == pytest.approx(
            result.baseline_dl_mbps, rel=0.05
        )
        for dl in result.das_individual_dl_mbps:
            assert dl == pytest.approx(result.baseline_dl_mbps, rel=0.05)

    def test_uplink_also_matches(self, result):
        assert result.das_simultaneous_ul_mbps == pytest.approx(
            result.baseline_ul_mbps, rel=0.1
        )

    def test_upper_floors_cannot_attach_to_single_cell(self, result):
        assert result.upper_floor_attach_failures == 4

    def test_absolute_band(self, result):
        """~900 Mbps DL / tens of Mbps UL for 100 MHz 4x4."""
        assert 800 < result.baseline_dl_mbps < 1000
        assert 40 < result.baseline_ul_mbps < 90


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table2()

    def test_dmimo_matches_baselines(self, result):
        for baseline, distributed in (
            ("Single RU - 2 antennas", "Two RUs - 1 antenna each (RANBooster)"),
            ("Single RU - 4 antennas", "Two RUs - 2 antennas each (RANBooster)"),
        ):
            assert result.row(distributed).dl_mbps == pytest.approx(
                result.row(baseline).dl_mbps, rel=0.05
            )

    def test_rank_indicators(self, result):
        assert result.row("Single RU - 2 antennas").rank == 2
        assert result.row("Two RUs - 1 antenna each (RANBooster)").rank == 2
        assert result.row("Single RU - 4 antennas").rank == 4
        assert result.row("Two RUs - 2 antennas each (RANBooster)").rank == 4

    def test_absolute_bands(self, result):
        """653 / 898 Mbps in the paper; the model lands within 10%."""
        assert result.row("Single RU - 2 antennas").dl_mbps == pytest.approx(
            653, rel=0.1
        )
        assert result.row("Single RU - 4 antennas").dl_mbps == pytest.approx(
            898, rel=0.1
        )

    def test_uplink_unaffected(self, result):
        uls = [row.ul_mbps for row in result.rows]
        assert max(uls) - min(uls) < 5


class TestFig10b:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig10b()

    def test_shared_equals_dedicated(self, result):
        for name in ("A", "B"):
            assert result.shared_dl_mbps[name] == pytest.approx(
                result.dedicated_dl_mbps, rel=0.05
            )
            assert result.shared_ul_mbps[name] == pytest.approx(
                result.dedicated_ul_mbps, rel=0.1
            )

    def test_absolute_band(self, result):
        """~330 Mbps DL / ~25 Mbps UL for the 40 MHz cells."""
        assert 300 < result.dedicated_dl_mbps < 380
        assert 15 < result.dedicated_ul_mbps < 35


class TestFig10c:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig10c(loads_mbps=(0, 200, 400, 700), n_slots=20)

    def test_estimates_track_ground_truth(self, result):
        assert result.max_error() < 0.05

    def test_utilization_monotonic_in_load(self, result):
        series = [p.estimated_utilization for p in result.downlink]
        assert series == sorted(series)

    def test_idle_cell_near_zero(self, result):
        assert result.downlink[0].estimated_utilization < 0.05


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig11(step_m=4.0)

    def test_o1_spectrum_limited(self, result):
        low, mean, high = result.o1.summary()
        assert high < 250  # ~200 Mbps cap from 25 MHz

    def test_o2_interference_dips(self, result):
        low, mean, high = result.o2.summary()
        assert high > 600  # good spots reach near the offered load
        assert low < 450  # but several locations dip hard

    def test_o3_das_best_everywhere(self, result):
        low, mean, high = result.o3.summary()
        assert low > 650  # ~700 Mbps across the whole floor
        assert result.o3.mbps().min() >= result.o1.mbps().max()
        assert result.o3.mbps().mean() >= result.o2.mbps().mean()


class TestFig12:
    def test_both_mnos_350_everywhere(self):
        result = run_fig12(step_m=6.0)
        for series in (result.mno1_walk_mbps, result.mno2_walk_mbps):
            arr = np.array(series)
            assert arr.min() > 300
            assert arr.mean() == pytest.approx(350, rel=0.1)


class TestFig13:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig13(step_m=4.0)

    def test_das_uniform_siso(self, result):
        das = np.array(result.das_walk_mbps)
        assert das.std() / das.mean() < 0.1  # uniform coverage
        assert 200 < das.mean() < 320  # ~250 Mbps

    def test_dmimo_2_to_3x(self, result):
        factors = np.array(result.improvement_factors())
        assert factors.min() > 1.4
        assert 2.0 < factors.mean() < 3.2
        assert factors.max() < 3.8


class TestFig14:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig14()

    def test_power_savings(self, result):
        a = result.per_floor_cells.power_w
        b = result.single_cell_chain.power_w
        assert 350 < a < 430  # ~400 W
        assert 160 < b < 210  # ~180 W
        assert (a - b) / a > 0.45

    def test_per_floor_throughput_tradeoff(self, result):
        per_floor_a = np.mean(result.per_floor_cells.per_floor_dl_mbps)
        per_floor_b = np.mean(result.single_cell_chain.per_floor_dl_mbps)
        peak_b = np.mean(result.single_cell_chain.per_floor_peak_mbps)
        assert per_floor_a > 500  # ~650 Mbps per floor with 5 cells
        assert per_floor_b < per_floor_a / 3  # shared single cell
        assert peak_b > 500  # instantaneous rate still reaches cell rate


class TestFig15:
    def test_scalability_crossover_at_5_rus(self):
        result = run_fig15a()
        by_rus = {p.n_rus: p for p in result.points}
        assert by_rus[4].cores_required == 1
        assert by_rus[5].cores_required == 2

    def test_traffic_linear_and_below_nic(self):
        result = run_fig15a()
        egress = [p.egress_gbps for p in result.points]
        diffs = np.diff(egress)
        assert np.allclose(diffs, diffs[0], rtol=0.05)  # linear
        assert max(egress) < 100  # below the 100GbE NIC

    def test_latency_breakdown_shape(self):
        result = run_fig15b(ru_counts=(2, 4), n_slots=5)
        for breakdown in result.breakdowns:
            # DL processing under 300 ns in all cases.
            assert breakdown.percentile("DL C-Plane", 99) < 300
            assert breakdown.percentile("DL U-Plane", 99) < 300
            # Uplink merge tail in the microseconds, growing with RUs.
            assert breakdown.percentile("UL U-Plane", 99) > 2_000
        two = result.breakdowns[0].percentile("UL U-Plane", 99)
        four = result.breakdowns[-1].percentile("UL U-Plane", 99)
        assert four > two

    def test_ul_majority_is_cheap_caching(self):
        result = run_fig15b(ru_counts=(4,), n_slots=5)
        values = np.array(result.breakdowns[0].by_class["UL U-Plane"])
        assert np.mean(values < 300) >= 0.6  # ~75% in the paper


class TestFig16:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig16(n_slots=20)

    def test_dpdk_always_100(self, result):
        for app in result.dpdk:
            for condition, value in result.dpdk[app].items():
                assert value == 1.0

    def test_xdp_traffic_proportional(self, result):
        for app in result.xdp:
            idle = result.xdp[app]["Idle"]
            attached = result.xdp[app]["UE Attached"]
            traffic = result.xdp[app]["Traffic"]
            assert idle < attached < traffic

    def test_das_25_to_30_points_above_dmimo(self, result):
        gap = result.xdp["das"]["Traffic"] - result.xdp["dmimo"]["Traffic"]
        assert 0.15 < gap < 0.40


class TestAppendix:
    def test_sharing_math(self):
        result = run_sharing_math()
        assert result.du_offsets_prb == [0.0, 106.0]
        assert result.du_centers_hz[0] == pytest.approx(3.42994e9, rel=1e-6)

    def test_cost_savings_41_percent(self):
        result = run_cost_analysis()
        assert result.savings_fraction == pytest.approx(0.41, abs=0.03)
        assert result.ranbooster_usd < result.conventional_usd


class TestMobility:
    def test_handover_free_distributed_cells(self):
        from repro.eval.mobility import run_mobility

        result = run_mobility(step_m=2.0)
        assert result.multi_cell.handovers > 0
        assert result.das.handovers == 0
        assert result.dmimo.handovers == 0
        assert result.multi_cell.interruption_fraction > 0
