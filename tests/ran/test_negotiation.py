"""Per-stream codec negotiation: profile advertisement, RU capabilities."""

import pytest

from repro.fronthaul.compression import (
    BFP_COMP_METH,
    MOD_COMP_METH,
    NO_COMP_METH,
    CompressionConfig,
)
from repro.ran.mplane import RuCapabilities
from repro.ran.stacks import (
    ALL_PROFILES,
    CodecNegotiationError,
    VendorProfile,
    negotiate_compression,
    profile_by_name,
)


def _bfp_only_profile():
    srs = profile_by_name("srsRAN")
    return VendorProfile(
        name="legacy",
        tdd=srs.tdd,
        dl_overhead=srs.dl_overhead,
        ul_overhead=srs.ul_overhead,
        scheduler_efficiency=srs.scheduler_efficiency,
        ul_max_se=srs.ul_max_se,
        dl_max_se=srs.dl_max_se,
        compression=CompressionConfig(iq_width=9),
        modcomp=None,
    )


class TestProfileAdvertisement:
    def test_every_stock_profile_supports_both_codecs(self):
        for profile in ALL_PROFILES:
            assert profile.supported_codecs() == ("bfp", "modcomp")

    def test_preference_comes_first(self):
        srs = profile_by_name("srsRAN")
        preferring = VendorProfile(
            **{**srs.__dict__, "preferred_codec": "modcomp"}
        )
        assert preferring.supported_codecs() == ("modcomp", "bfp")

    def test_bfp_only_profile_advertises_one_codec(self):
        assert _bfp_only_profile().supported_codecs() == ("bfp",)

    def test_codec_config_default_is_preference(self):
        srs = profile_by_name("srsRAN")
        assert srs.codec_config() == srs.compression
        assert srs.codec_config("modcomp") == srs.modcomp

    def test_codec_config_unknown_name_raises(self):
        with pytest.raises(CodecNegotiationError, match="unknown codec"):
            profile_by_name("srsRAN").codec_config("zstd")

    def test_codec_config_missing_modcomp_raises(self):
        with pytest.raises(CodecNegotiationError, match="does not implement"):
            _bfp_only_profile().codec_config("modcomp")

    def test_negotiation_error_is_a_value_error(self):
        assert issubclass(CodecNegotiationError, ValueError)


class TestRuCapabilities:
    def test_default_capabilities_accept_stock_negotiations(self):
        caps = RuCapabilities()
        for profile in ALL_PROFILES:
            for codec in profile.supported_codecs():
                assert (
                    caps.validate_compression(profile.codec_config(codec))
                    == []
                )

    def test_unsupported_meth_is_rejected(self):
        caps = RuCapabilities(
            supported_comp_meths=(NO_COMP_METH, BFP_COMP_METH)
        )
        errors = caps.validate_compression(
            CompressionConfig(iq_width=4, comp_meth=MOD_COMP_METH)
        )
        assert errors

    def test_unsupported_modcomp_width_is_rejected(self):
        caps = RuCapabilities(supported_modcomp_widths=(3,))
        assert caps.validate_compression(
            CompressionConfig(iq_width=3, comp_meth=MOD_COMP_METH)
        ) == []
        assert caps.validate_compression(
            CompressionConfig(iq_width=6, comp_meth=MOD_COMP_METH)
        )


class TestNegotiateCompression:
    def test_default_negotiation_is_the_bfp_baseline(self):
        for profile in ALL_PROFILES:
            assert negotiate_compression(profile) == profile.compression

    def test_pinned_modcomp_negotiates_vendor_width(self):
        assert negotiate_compression(
            profile_by_name("srsRAN"), "modcomp"
        ) == CompressionConfig(iq_width=3, comp_meth=MOD_COMP_METH)
        assert negotiate_compression(
            profile_by_name("Radisys"), "modcomp"
        ) == CompressionConfig(iq_width=6, comp_meth=MOD_COMP_METH)

    def test_capable_radio_accepts(self):
        config = negotiate_compression(
            profile_by_name("CapGemini"), "modcomp", RuCapabilities()
        )
        assert config.comp_meth == MOD_COMP_METH

    def test_incapable_radio_refuses_loudly(self):
        caps = RuCapabilities(
            supported_comp_meths=(NO_COMP_METH, BFP_COMP_METH)
        )
        with pytest.raises(CodecNegotiationError):
            negotiate_compression(
                profile_by_name("srsRAN"), "modcomp", caps
            )

    def test_wrong_width_radio_refuses(self):
        caps = RuCapabilities(supported_modcomp_widths=(4,))
        with pytest.raises(CodecNegotiationError):
            negotiate_compression(
                profile_by_name("srsRAN"), "modcomp", caps
            )
        assert negotiate_compression(
            profile_by_name("CapGemini"), "modcomp", caps
        ).iq_width == 4
