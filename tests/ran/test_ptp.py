"""S-plane PTP message-exchange tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ran.ptp import (
    PtpMessageType,
    PtpPath,
    PtpSession,
    converge_deployment,
)


class TestPtpPath:
    def test_delays_nonnegative(self):
        path = PtpPath(mean_delay_ns=100, jitter_ns=500, seed=1)
        for _ in range(100):
            assert path.forward_ns() >= 0
            assert path.reverse_ns() >= 0

    def test_asymmetry_splits_between_directions(self):
        path = PtpPath(mean_delay_ns=5000, asymmetry_ns=400, jitter_ns=0)
        assert path.forward_ns() - path.reverse_ns() == pytest.approx(400)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            PtpPath(mean_delay_ns=-1)


class TestPtpSession:
    def test_exchange_emits_full_two_step_sequence(self):
        session = PtpSession(PtpPath(jitter_ns=0))
        session.exchange()
        kinds = [message.kind for message in session.log]
        assert kinds == [
            PtpMessageType.SYNC,
            PtpMessageType.FOLLOW_UP,
            PtpMessageType.DELAY_REQ,
            PtpMessageType.DELAY_RESP,
        ]

    def test_symmetric_path_measures_exact_offset(self):
        session = PtpSession(
            PtpPath(mean_delay_ns=5000, jitter_ns=0),
            true_client_offset_ns=1234.0,
        )
        sample = session.exchange()
        assert sample.offset_ns == pytest.approx(1234.0)
        assert sample.mean_path_delay_ns == pytest.approx(5000.0)

    def test_servo_converges_symmetric(self):
        session = PtpSession(
            PtpPath(mean_delay_ns=5000, jitter_ns=20, seed=2),
            true_client_offset_ns=50_000.0,  # 50 us initial error
        )
        residual = session.converge(rounds=40)
        assert abs(residual) < 50  # nanoseconds

    def test_convergence_is_monotone_in_the_large(self):
        session = PtpSession(
            PtpPath(mean_delay_ns=5000, jitter_ns=0),
            true_client_offset_ns=10_000.0,
        )
        residuals = []
        for _ in range(10):
            session.exchange()
            residuals.append(abs(session.residual_ns()))
        assert residuals[-1] < residuals[0] / 10

    def test_asymmetry_biases_by_half(self):
        """The textbook PTP blind spot: half the asymmetry is invisible."""
        session = PtpSession(
            PtpPath(mean_delay_ns=5000, asymmetry_ns=200, jitter_ns=0),
            true_client_offset_ns=0.0,
        )
        residual = session.converge(rounds=30)
        assert residual == pytest.approx(-100.0, abs=1.0)

    def test_path_delay_estimate(self):
        session = PtpSession(PtpPath(mean_delay_ns=7000, jitter_ns=10, seed=3))
        session.converge(rounds=16)
        assert session.estimated_path_delay_ns() == pytest.approx(7000, abs=50)

    def test_path_delay_requires_exchanges(self):
        with pytest.raises(RuntimeError):
            PtpSession(PtpPath()).estimated_path_delay_ns()

    def test_rejects_bad_servo_gain(self):
        with pytest.raises(ValueError):
            PtpSession(PtpPath(), servo_gain=0.0)

    @settings(max_examples=30, deadline=None)
    @given(offset=st.floats(min_value=-1e6, max_value=1e6))
    def test_converges_from_any_initial_offset(self, offset):
        session = PtpSession(
            PtpPath(mean_delay_ns=5000, jitter_ns=0),
            true_client_offset_ns=offset,
        )
        assert abs(session.converge(rounds=50)) < max(abs(offset) * 1e-5, 1.0)


class TestDeploymentConvergence:
    def test_dmimo_budget_met_with_good_paths(self):
        """A locked deployment lands inside the 65 ns dMIMO TAE budget."""
        rng = np.random.default_rng(4)
        residuals = converge_deployment(
            n_clients=5,
            initial_offsets_ns=rng.uniform(-1e5, 1e5, 5),
            path_factory=lambda i: PtpPath(mean_delay_ns=5000, jitter_ns=15,
                                           seed=i),
            rounds=48,
        )
        spread = max(residuals) - min(residuals)
        assert spread < 65.0

    def test_asymmetric_paths_blow_the_budget(self):
        """Uncompensated asymmetry (e.g. mismatched fiber pairs) breaks
        the dMIMO phase budget even though PTP reports 'locked'."""
        rng = np.random.default_rng(5)
        residuals = converge_deployment(
            n_clients=4,
            initial_offsets_ns=rng.uniform(-1e5, 1e5, 4),
            path_factory=lambda i: PtpPath(
                mean_delay_ns=5000, asymmetry_ns=(-1) ** i * 300,
                jitter_ns=10, seed=10 + i,
            ),
            rounds=48,
        )
        spread = max(residuals) - min(residuals)
        assert spread > 65.0

    def test_requires_clients(self):
        with pytest.raises(ValueError):
            converge_deployment(0, [], lambda i: PtpPath())
