"""Radio Unit tests: C-plane obedience, DL acceptance, UL generation."""

import numpy as np
import pytest

from repro.fronthaul.cplane import Direction
from repro.ran.du import DistributedUnit
from repro.ran.ru import RadioUnit, RuConfig
from repro.ran.traffic import ConstantBitrateFlow


@pytest.fixture
def pair(cell_40mhz):
    du = DistributedUnit(du_id=1, cell=cell_40mhz, symbols_per_slot=1, seed=2)
    ru = RadioUnit(
        ru_id=1,
        config=RuConfig(num_prb=cell_40mhz.num_prb, n_antennas=2),
        mac=du.ru_mac,
        du_mac=du.mac,
    )
    du.scheduler.add_ue("ue", dl_layers=2)
    du.scheduler.update_ue_quality("ue", dl_aggregate_se=10.0, ul_se=3.0)
    du.attach_flow("ue", ConstantBitrateFlow(100, "dl"), Direction.DOWNLINK)
    du.attach_flow("ue", ConstantBitrateFlow(20, "ul"), Direction.UPLINK)
    return du, ru


def run_downlink(du, ru, n_slots=5):
    for _ in range(n_slots):
        for packet in du.advance_slot():
            ru.receive(packet)


class TestDownlink:
    def test_scheduled_uplane_accepted(self, pair):
        du, ru = pair
        run_downlink(du, ru)
        assert ru.counters.uplane_received > 0
        assert ru.counters.unsolicited_uplane == 0
        assert ru.transmitted_symbols()

    def test_transmit_grid_carries_energy(self, pair):
        du, ru = pair
        run_downlink(du, ru)
        time, port = ru.transmitted_symbols()[0]
        grid = ru.transmit_grid(time, port)
        assert grid is not None
        assert float(np.mean(np.abs(grid) ** 2)) > 0.01

    def test_uplane_without_cplane_dropped(self, pair):
        du, ru = pair
        packets = []
        for _ in range(5):
            packets.extend(du.advance_slot())
        uplane = [p for p in packets if p.is_uplane]
        # Deliver U-plane only — no C-plane windows were opened.
        for packet in uplane:
            ru.receive(packet)
        assert ru.counters.uplane_received == 0
        assert ru.counters.unsolicited_uplane == len(uplane)
        assert not ru.transmitted_symbols()

    def test_wrong_mac_rejected(self, pair):
        du, ru = pair
        packets = du.advance_slot()
        packets[0].eth.dst = du.mac  # not the RU's address
        with pytest.raises(ValueError):
            ru.receive(packets[0])

    def test_idle_symbol_transmits_nothing(self, pair):
        du, ru = pair
        run_downlink(du, ru)
        from repro.fronthaul.timing import SymbolTime

        assert ru.transmit_grid(SymbolTime(99, 0, 0, 0), 0) is None


class TestUplink:
    def test_pending_requests_follow_cplane(self, pair):
        du, ru = pair
        run_downlink(du, ru, n_slots=5)  # includes the U slot
        pending = ru.pending_uplink_symbols()
        assert pending
        times = {time.slot_key() for time, _ in pending}
        assert times  # at least one UL slot requested

    def test_build_uplink_answers_request(self, pair):
        du, ru = pair
        run_downlink(du, ru, n_slots=5)
        time, port = ru.pending_uplink_symbols()[0]
        packets = ru.build_uplink(time, port)
        assert len(packets) == 1
        message = packets[0].message
        assert message.direction is Direction.UPLINK
        assert message.time == time
        assert packets[0].eth.dst == du.mac
        assert packets[0].eaxc.ru_port == port

    def test_build_uplink_without_request_is_empty(self, pair):
        _, ru = pair
        from repro.fronthaul.timing import SymbolTime

        assert ru.build_uplink(SymbolTime(0, 0, 0, 10), 0) == []

    def test_uplink_digitizes_air_signal(self, pair, rng):
        du, ru = pair
        run_downlink(du, ru, n_slots=5)
        time, port = ru.pending_uplink_symbols()[0]
        n_sc = ru.config.num_prb * 12
        air = np.ones(n_sc, dtype=complex) * 0.3
        packet = ru.build_uplink(time, port, air_iq=air)[0]
        samples = packet.message.sections[0].iq_samples()
        # 0.3 amplitude * 0.25 backoff * 32767 ~= 2457 on the I rail.
        assert abs(samples[:, 0].mean() - 2457) < 100

    def test_uplink_noise_only_has_low_energy(self, pair):
        du, ru = pair
        run_downlink(du, ru, n_slots=5)
        time, port = ru.pending_uplink_symbols()[0]
        packet = ru.build_uplink(time, port, air_iq=None)[0]
        exponents = packet.message.sections[0].exponents()
        assert exponents.max() <= 2  # below the Algorithm 1 UL threshold

    def test_air_size_mismatch_rejected(self, pair):
        du, ru = pair
        run_downlink(du, ru, n_slots=5)
        time, port = ru.pending_uplink_symbols()[0]
        with pytest.raises(ValueError):
            ru.build_uplink(time, port, air_iq=np.ones(10, dtype=complex))

    def test_clear_uplink_requests(self, pair):
        du, ru = pair
        run_downlink(du, ru, n_slots=5)
        pending = ru.pending_uplink_symbols()
        assert pending
        ru.clear_uplink_requests(pending[0][0].slot_key())
        remaining = {t.slot_key() for t, _ in ru.pending_uplink_symbols()}
        assert pending[0][0].slot_key() not in remaining


class TestHousekeeping:
    def test_flush_before_drops_old_grids(self, pair):
        du, ru = pair
        run_downlink(du, ru, n_slots=6)
        before = len(ru.transmitted_symbols())
        ru.flush_before(3, du.cell.numerology)
        assert len(ru.transmitted_symbols()) < before
