"""Distributed Unit tests: packet generation and uplink consumption."""

import numpy as np
import pytest

from repro.fronthaul.cplane import Direction, SectionType
from repro.fronthaul.packet import parse_packet
from repro.ran.cell import CellConfig
from repro.ran.du import DistributedUnit
from repro.ran.traffic import ConstantBitrateFlow


@pytest.fixture
def du(cell_40mhz):
    du = DistributedUnit(du_id=1, cell=cell_40mhz, symbols_per_slot=1, seed=1)
    du.scheduler.add_ue("ue", dl_layers=2)
    du.scheduler.update_ue_quality("ue", dl_aggregate_se=10.0, ul_se=3.0)
    return du


def loaded(du, dl=100.0, ul=20.0):
    if dl:
        du.attach_flow("ue", ConstantBitrateFlow(dl, "dl"), Direction.DOWNLINK)
    if ul:
        du.attach_flow("ue", ConstantBitrateFlow(ul, "ul"), Direction.UPLINK)
    return du


class TestDownlinkGeneration:
    def test_idle_slot_produces_nothing_between_ssb(self, du):
        du.clock._slot = 1  # not an SSB slot
        packets = du.advance_slot()
        assert packets == []

    def test_ssb_slot_produces_packets_even_idle(self, du):
        packets = du.advance_slot()  # slot 0 is an SSB slot
        assert packets  # C-plane + SSB U-plane

    def test_loaded_slot_produces_cplane_per_port(self, du):
        loaded(du, ul=0)
        packets = [p for p in du.advance_slot() if p.is_cplane]
        dl_cplane = [p for p in packets if p.direction is Direction.DOWNLINK]
        assert len(dl_cplane) == du.cell.n_antennas
        ports = {p.eaxc.ru_port for p in dl_cplane}
        assert ports == set(range(du.cell.n_antennas))

    def test_cplane_covers_full_carrier(self, du):
        loaded(du, ul=0)
        cplane = [p for p in du.advance_slot() if p.is_cplane][0]
        assert cplane.message.sections[0].prb_range == (0, du.cell.num_prb)

    def test_uplane_full_band_and_compressed(self, du):
        loaded(du, ul=0)
        uplane = [p for p in du.advance_slot() if p.is_uplane]
        assert len(uplane) == du.cell.n_antennas  # 1 symbol x 2 ports
        section = uplane[0].message.sections[0]
        assert section.num_prb == du.cell.num_prb
        assert section.compression.iq_width == 9

    def test_uplane_wire_parseable(self, du):
        loaded(du, ul=0)
        for packet in du.advance_slot():
            parsed = parse_packet(packet.pack(), carrier_num_prb=du.cell.num_prb)
            assert parsed.eth.dst == du.ru_mac

    def test_allocated_prbs_carry_energy_idle_do_not(self, du):
        loaded(du, dl=30.0, ul=0)
        uplane = [p for p in du.advance_slot() if p.is_uplane
                  and p.eaxc.ru_port == 0]
        section = uplane[0].message.sections[0]
        exponents = section.exponents()
        assert exponents.max() > 0  # data PRBs
        assert exponents.min() == 0  # idle PRBs

    def test_seq_ids_increment_per_flow(self, du):
        loaded(du, ul=0)
        seqs = []
        for _ in range(3):
            for packet in du.advance_slot():
                if packet.is_uplane and packet.eaxc.ru_port == 0:
                    seqs.append(packet.ecpri.seq_id)
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_dl_reference_recorded_when_enabled(self, cell_40mhz):
        du = DistributedUnit(du_id=1, cell=cell_40mhz, symbols_per_slot=1,
                             record_reference=True)
        du.scheduler.add_ue("ue", dl_layers=1)
        du.attach_flow("ue", ConstantBitrateFlow(50, "dl"), Direction.DOWNLINK)
        du.advance_slot()
        assert du.dl_reference


class TestSsb:
    def test_ssb_on_port0_only(self, du):
        """The SSB is transmitted by the first antenna only — the gap the
        dMIMO middlebox fills (Section 4.2)."""
        reference = du.ssb_reference()
        packets = [p for p in du.advance_slot() if p.is_uplane]
        start, end = du.cell.ssb_prb_range
        from repro.phy.iq import int16_to_iq

        for packet in packets:
            section = packet.message.sections[0]
            block = int16_to_iq(section.iq_samples())[start * 12 : end * 12]
            correlation = np.abs(np.vdot(block, reference)) / (
                np.linalg.norm(block) * np.linalg.norm(reference) + 1e-12
            )
            if packet.eaxc.ru_port == 0:
                assert correlation > 0.9
            else:
                assert correlation < 0.3

    def test_ssb_reference_deterministic_per_pci(self, cell_40mhz):
        du_a = DistributedUnit(du_id=1, cell=cell_40mhz)
        du_b = DistributedUnit(du_id=2, cell=cell_40mhz)
        assert (du_a.ssb_reference() == du_b.ssb_reference()).all()
        other_cell = CellConfig(pci=77, bandwidth_hz=40_000_000,
                                n_antennas=2, max_dl_layers=2)
        du_c = DistributedUnit(du_id=3, cell=other_cell)
        assert not (du_a.ssb_reference() == du_c.ssb_reference()).all()


class TestUplinkPath:
    def test_ul_cplane_only_with_traffic(self, du):
        du.clock._slot = 3  # S slot: UL symbols exist
        packets = du.advance_slot()
        assert not any(
            p.is_cplane and p.direction is Direction.UPLINK for p in packets
        )

    def test_ul_cplane_emitted_with_traffic(self, du):
        loaded(du, dl=0, ul=50.0)
        found = False
        for _ in range(5):
            for packet in du.advance_slot():
                if packet.is_cplane and packet.direction is Direction.UPLINK:
                    found = True
        assert found

    def test_prach_cplane_on_prach_slots(self, cell_40mhz):
        du = DistributedUnit(du_id=1, cell=cell_40mhz)
        prach = []
        for _ in range(45):
            for packet in du.advance_slot():
                if (
                    packet.is_cplane
                    and packet.message.section_type is SectionType.PRACH
                ):
                    prach.append(packet)
        assert prach
        message = prach[0].message
        assert message.filter_index == 1
        assert message.sections[0].freq_offset is not None

    def test_receive_rejects_downlink(self, du):
        loaded(du, ul=0)
        uplane = [p for p in du.advance_slot() if p.is_uplane][0]
        with pytest.raises(ValueError):
            du.receive(uplane)


class TestCounters:
    def test_dl_bits_track_offered_load(self, du):
        loaded(du, dl=100.0, ul=0)
        n_slots = 20
        for _ in range(n_slots):
            du.advance_slot()
        elapsed_s = n_slots * du.cell.numerology.slot_duration_ns / 1e9
        rate = du.counters.dl_bits / elapsed_s / 1e6
        assert rate == pytest.approx(100.0, rel=0.15)
