"""Cell configuration tests."""

import pytest

from repro.ran.cell import CellConfig


class TestCellConfig:
    def test_100mhz_prb_count(self):
        assert CellConfig(pci=1).num_prb == 273

    def test_40mhz_prb_count(self):
        assert CellConfig(pci=1, bandwidth_hz=40_000_000).num_prb == 106

    def test_grid_center(self):
        cell = CellConfig(pci=1, center_frequency_hz=3.46e9)
        assert cell.grid.center_frequency_hz == 3.46e9
        assert cell.grid.num_prb == cell.num_prb

    def test_occupied_bandwidth_below_channel(self):
        cell = CellConfig(pci=1)
        assert cell.occupied_bandwidth_hz < cell.bandwidth_hz

    def test_pci_validation(self):
        with pytest.raises(ValueError):
            CellConfig(pci=1008)

    def test_layers_cannot_exceed_antennas(self):
        with pytest.raises(ValueError):
            CellConfig(pci=1, n_antennas=2, max_dl_layers=4)

    def test_ssb_periodicity(self):
        cell = CellConfig(pci=1, ssb_period_slots=40)
        assert cell.is_ssb_slot(0)
        assert cell.is_ssb_slot(40)
        assert not cell.is_ssb_slot(1)

    def test_ssb_prb_range_centred(self):
        cell = CellConfig(pci=1)
        start, end = cell.ssb_prb_range
        assert end - start == 20
        assert abs((start + end) / 2 - cell.num_prb / 2) <= 1

    def test_ssb_range_fits_small_cell(self):
        cell = CellConfig(pci=1, bandwidth_hz=20_000_000)
        start, end = cell.ssb_prb_range
        assert 0 <= start < end <= cell.num_prb

    def test_prach_periodicity(self):
        cell = CellConfig(pci=1, prach_period_slots=40)
        assert cell.is_prach_slot(4)
        assert cell.is_prach_slot(44)
        assert not cell.is_prach_slot(0)
