"""Property-based tests of MAC scheduler invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fronthaul.cplane import Direction
from repro.ran.cell import CellConfig
from repro.ran.scheduler import MacScheduler
from repro.ran.stacks import SRSRAN

CELL = CellConfig(pci=1, bandwidth_hz=40_000_000, n_antennas=2,
                  max_dl_layers=2)


@st.composite
def workloads(draw):
    n_ues = draw(st.integers(min_value=1, max_value=6))
    queues = [
        (
            draw(st.integers(min_value=0, max_value=2_000_000)),  # dl bits
            draw(st.integers(min_value=0, max_value=500_000)),  # ul bits
        )
        for _ in range(n_ues)
    ]
    slots = draw(st.integers(min_value=1, max_value=10))
    return queues, slots


@settings(max_examples=60, deadline=None)
@given(workloads())
def test_allocations_never_overlap_and_fit_carrier(workload):
    queues, slots = workload
    scheduler = MacScheduler(CELL, SRSRAN)
    for index, (dl, ul) in enumerate(queues):
        scheduler.add_ue(f"ue{index}")
        scheduler.enqueue_dl(f"ue{index}", dl)
        scheduler.enqueue_ul(f"ue{index}", ul)
    for slot in range(slots):
        allocations = scheduler.schedule_slot(slot)
        for direction in (Direction.DOWNLINK, Direction.UPLINK):
            ranges = sorted(
                a.prb_range for a in allocations if a.direction is direction
            )
            for (s1, e1), (s2, e2) in zip(ranges, ranges[1:]):
                assert e1 <= s2, "overlapping allocations"
            for start, end in ranges:
                assert 0 <= start < end <= CELL.num_prb


@settings(max_examples=60, deadline=None)
@given(workloads())
def test_bits_conservation(workload):
    """Scheduled bits never exceed what was enqueued."""
    queues, slots = workload
    scheduler = MacScheduler(CELL, SRSRAN)
    total_dl_in = total_ul_in = 0
    for index, (dl, ul) in enumerate(queues):
        scheduler.add_ue(f"ue{index}")
        scheduler.enqueue_dl(f"ue{index}", dl)
        scheduler.enqueue_ul(f"ue{index}", ul)
        total_dl_in += dl
        total_ul_in += ul
    dl_out = ul_out = 0
    for slot in range(slots):
        for allocation in scheduler.schedule_slot(slot):
            assert allocation.bits >= 0
            if allocation.direction is Direction.DOWNLINK:
                dl_out += allocation.bits
            else:
                ul_out += allocation.bits
    assert dl_out <= total_dl_in
    assert ul_out <= total_ul_in
    # Remaining queues account for the difference.
    dl_left = sum(c.dl_queue_bits for c in scheduler.ues.values())
    ul_left = sum(c.ul_queue_bits for c in scheduler.ues.values())
    assert dl_out + dl_left == total_dl_in
    assert ul_out + ul_left == total_ul_in


@settings(max_examples=40, deadline=None)
@given(workloads())
def test_mac_log_utilization_bounded(workload):
    queues, slots = workload
    scheduler = MacScheduler(CELL, SRSRAN)
    for index, (dl, ul) in enumerate(queues):
        scheduler.add_ue(f"ue{index}")
        scheduler.enqueue_dl(f"ue{index}", dl)
        scheduler.enqueue_ul(f"ue{index}", ul)
    for slot in range(slots):
        scheduler.schedule_slot(slot)
    for entry in scheduler.mac_log:
        assert 0.0 <= entry.utilization <= 1.0
