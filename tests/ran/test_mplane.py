"""M-plane management session tests."""

import pytest

from repro.fronthaul.compression import CompressionConfig
from repro.ran.mplane import (
    CommitError,
    MPlaneSession,
    RuCapabilities,
    SupervisionLost,
)
from repro.ran.ru import RuConfig


@pytest.fixture
def session():
    return MPlaneSession(RuConfig())


class TestCapabilities:
    def test_default_config_valid(self):
        assert RuCapabilities().validate(RuConfig()) == []

    def test_out_of_band_carrier_rejected(self):
        config = RuConfig(center_frequency_hz=2.6e9)
        errors = RuCapabilities().validate(config)
        assert any("GHz" in e for e in errors)

    def test_carrier_edge_checked_not_just_center(self):
        """A 100 MHz carrier centred at the band edge spills out."""
        config = RuConfig(center_frequency_hz=3.31e9, num_prb=273)
        assert RuCapabilities().validate(config)

    def test_excess_power_rejected(self):
        config = RuConfig(tx_power_dbm_per_port=30.0)
        errors = RuCapabilities().validate(config)
        assert any("dBm" in e for e in errors)

    def test_unsupported_compression_rejected(self):
        config = RuConfig(compression=CompressionConfig(iq_width=6))
        assert RuCapabilities().validate(config)


class TestDatastores:
    def test_edit_stages_without_applying(self, session):
        original = session.running
        session.edit(center_frequency_hz=3.5e9)
        assert session.running == original
        assert session.candidate.center_frequency_hz == 3.5e9

    def test_commit_applies_atomically(self, session):
        session.edit(center_frequency_hz=3.5e9, tx_power_dbm_per_port=20.0)
        applied = session.commit()
        assert applied.center_frequency_hz == 3.5e9
        assert applied.tx_power_dbm_per_port == 20.0
        assert session.candidate is None
        assert len(session.commit_history) == 2

    def test_invalid_commit_leaves_running_untouched(self, session):
        before = session.running
        session.edit(center_frequency_hz=2.0e9)
        with pytest.raises(CommitError):
            session.commit()
        assert session.running == before
        assert session.candidate is not None  # still staged for fixing

    def test_validate_previews_errors(self, session):
        session.edit(tx_power_dbm_per_port=99.0)
        assert session.validate()
        session.edit(tx_power_dbm_per_port=20.0)
        assert session.validate() == []

    def test_rollback_discards_candidate(self, session):
        session.edit(center_frequency_hz=3.5e9)
        session.rollback()
        assert session.candidate is None
        assert session.commit() == session.running

    def test_unknown_field_rejected(self, session):
        with pytest.raises(AttributeError):
            session.edit(bogus_knob=1)

    def test_edit_compression_helper(self, session):
        session.edit_compression(14)
        assert session.commit().compression.iq_width == 14

    def test_sharing_reconfiguration_scenario(self, session):
        """The Section 6.2.3 setup: retune the shared RU to 3.46 GHz,
        full 100 MHz, before deploying the sharing middlebox."""
        session.edit(center_frequency_hz=3.46e9, num_prb=273)
        applied = session.commit()
        grid = applied.grid
        assert grid.center_frequency_hz == 3.46e9
        assert grid.num_prb == 273

    def test_initial_invalid_config_rejected(self):
        with pytest.raises(CommitError):
            MPlaneSession(RuConfig(center_frequency_hz=1e9))


class TestSupervision:
    def test_regular_feeding_keeps_session(self, session):
        for now in (10.0, 50.0, 100.0, 150.0):
            session.supervise(now)
        assert session.alive

    def test_starvation_drops_session_and_candidate(self, session):
        session.supervise(10.0)
        session.edit(center_frequency_hz=3.5e9)
        with pytest.raises(SupervisionLost):
            session.supervise(200.0)
        assert not session.alive
        assert session.candidate is None

    def test_dead_session_rejects_edits(self, session):
        session.supervise(10.0)
        with pytest.raises(SupervisionLost):
            session.supervise(200.0)
        with pytest.raises(SupervisionLost):
            session.edit(center_frequency_hz=3.5e9)
        with pytest.raises(SupervisionLost):
            session.commit()

    def test_time_cannot_regress(self, session):
        session.supervise(50.0)
        with pytest.raises(ValueError):
            session.supervise(10.0)
