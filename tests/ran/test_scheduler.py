"""MAC scheduler tests."""

import pytest

from repro.fronthaul.cplane import Direction
from repro.ran.scheduler import MacScheduler
from repro.ran.stacks import SRSRAN


@pytest.fixture
def scheduler(cell_40mhz):
    return MacScheduler(cell_40mhz, SRSRAN)


class TestUeManagement:
    def test_add_and_remove(self, scheduler):
        scheduler.add_ue("a")
        assert "a" in scheduler.ues
        scheduler.remove_ue("a")
        assert "a" not in scheduler.ues

    def test_duplicate_add_rejected(self, scheduler):
        scheduler.add_ue("a")
        with pytest.raises(ValueError):
            scheduler.add_ue("a")

    def test_quality_clamped_by_profile(self, scheduler):
        context = scheduler.add_ue("a", dl_layers=2)
        scheduler.update_ue_quality("a", dl_aggregate_se=100.0, ul_se=100.0)
        assert context.dl_aggregate_se == pytest.approx(2 * SRSRAN.dl_max_se)
        assert context.ul_se == SRSRAN.ul_max_se


class TestScheduling:
    def test_no_queue_no_allocation(self, scheduler):
        scheduler.add_ue("a")
        assert scheduler.schedule_slot(0) == []

    def test_downlink_allocation_on_dl_slot(self, scheduler):
        scheduler.add_ue("a")
        scheduler.enqueue_dl("a", 50_000)
        allocations = scheduler.schedule_slot(0)  # slot 0 is D in DDDSU
        assert len(allocations) == 1
        allocation = allocations[0]
        assert allocation.direction is Direction.DOWNLINK
        assert allocation.num_prb > 0
        assert allocation.bits > 0

    def test_no_downlink_on_uplink_slot(self, scheduler):
        scheduler.add_ue("a")
        scheduler.enqueue_dl("a", 50_000)
        allocations = scheduler.schedule_slot(4)  # U slot in DDDSU
        assert all(a.direction is not Direction.DOWNLINK for a in allocations)

    def test_uplink_allocation_on_u_slot(self, scheduler):
        scheduler.add_ue("a")
        scheduler.enqueue_ul("a", 20_000)
        allocations = scheduler.schedule_slot(4)
        assert len(allocations) == 1
        assert allocations[0].direction is Direction.UPLINK

    def test_queue_drains(self, scheduler):
        scheduler.add_ue("a")
        scheduler.enqueue_dl("a", 10_000)
        scheduler.schedule_slot(0)
        assert scheduler.ues["a"].dl_queue_bits == 0

    def test_allocations_do_not_overlap(self, scheduler):
        for name in ("a", "b", "c"):
            scheduler.add_ue(name)
            scheduler.enqueue_dl(name, 80_000)
        allocations = [
            a for a in scheduler.schedule_slot(0)
            if a.direction is Direction.DOWNLINK
        ]
        ranges = sorted(a.prb_range for a in allocations)
        for (s1, e1), (s2, e2) in zip(ranges, ranges[1:]):
            assert e1 <= s2

    def test_budget_capped_by_cell_size(self, scheduler):
        scheduler.add_ue("a")
        scheduler.enqueue_dl("a", 10**9)
        allocations = scheduler.schedule_slot(0)
        assert allocations[0].num_prb <= scheduler.cell.num_prb

    def test_big_queue_saturates_budget(self, scheduler):
        scheduler.add_ue("a")
        scheduler.enqueue_dl("a", 10**9)
        allocations = scheduler.schedule_slot(0)
        budget = int(scheduler.cell.num_prb * SRSRAN.scheduler_efficiency)
        assert allocations[0].num_prb == budget

    def test_round_robin_rotates_order(self, scheduler):
        for name in ("a", "b"):
            scheduler.add_ue(name)
        first_ue_per_slot = []
        for slot in range(4):
            for name in ("a", "b"):
                scheduler.enqueue_dl(name, 10**9)
            allocations = [
                a for a in scheduler.schedule_slot(slot)
                if a.direction is Direction.DOWNLINK
            ]
            if allocations:
                first_ue_per_slot.append(allocations[0].ue_id)
            # drain leftovers so next slot starts fresh
            for context in scheduler.ues.values():
                context.dl_queue_bits = 0
        assert len(set(first_ue_per_slot)) == 2

    def test_bits_never_exceed_queue(self, scheduler):
        scheduler.add_ue("a")
        scheduler.enqueue_dl("a", 777)
        allocations = scheduler.schedule_slot(0)
        assert allocations[0].bits == 777


class TestMacLog:
    def test_ground_truth_utilization(self, scheduler):
        scheduler.add_ue("a")
        for slot in range(10):
            scheduler.enqueue_dl("a", 10**9)
            scheduler.schedule_slot(slot)
            scheduler.ues["a"].dl_queue_bits = 0
        utilization = scheduler.average_utilization(Direction.DOWNLINK)
        assert utilization == pytest.approx(SRSRAN.scheduler_efficiency, abs=0.01)

    def test_idle_cell_zero_utilization(self, scheduler):
        scheduler.add_ue("a")
        for slot in range(10):
            scheduler.schedule_slot(slot)
        assert scheduler.average_utilization(Direction.DOWNLINK) == 0.0

    def test_log_has_entry_per_direction_capable_slot(self, scheduler):
        scheduler.add_ue("a")
        for slot in range(5):  # one DDDSU period
            scheduler.schedule_slot(slot)
        directions = [entry.direction for entry in scheduler.mac_log]
        # 3 D slots + S (both) + U slot: 4 DL entries, 2 UL entries.
        assert directions.count(Direction.DOWNLINK) == 4
        assert directions.count(Direction.UPLINK) == 2
