"""Tests for traffic generators, PTP sync, vendor stacks, and the core."""

import pytest

from repro.ran.core_network import CoreNetwork, RegistrationError, Subscriber
from repro.ran.stacks import ALL_PROFILES, CAPGEMINI, RADISYS, SRSRAN, profile_by_name
from repro.ran.sync import DeadlineBudget, PtpClock, SyncStatus
from repro.ran.traffic import ConstantBitrateFlow, PoissonFlow

SLOT_NS = 500_000


class TestConstantBitrateFlow:
    def test_average_rate_exact(self):
        flow = ConstantBitrateFlow(100.0)
        total = sum(flow.bits_in_slot(SLOT_NS) for _ in range(1000))
        expected = 100e6 * 1000 * SLOT_NS / 1e9
        assert total == pytest.approx(expected, rel=1e-6)

    def test_zero_rate(self):
        flow = ConstantBitrateFlow(0.0)
        assert flow.bits_in_slot(SLOT_NS) == 0

    def test_no_drift_from_fractional_credit(self):
        flow = ConstantBitrateFlow(0.001)  # less than a bit per slot
        total = sum(flow.bits_in_slot(SLOT_NS) for _ in range(10_000))
        assert total == pytest.approx(0.001e6 * 10_000 * SLOT_NS / 1e9, abs=2)

    def test_reset(self):
        flow = ConstantBitrateFlow(33.3)
        flow.bits_in_slot(SLOT_NS)
        flow.reset()
        assert flow._credit_bits == 0.0

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            ConstantBitrateFlow(-1.0)


class TestPoissonFlow:
    def test_mean_rate(self):
        flow = PoissonFlow(50.0, seed=1)
        total = sum(flow.bits_in_slot(SLOT_NS) for _ in range(5000))
        expected = 50e6 * 5000 * SLOT_NS / 1e9
        assert total == pytest.approx(expected, rel=0.05)

    def test_burstiness(self):
        flow = PoissonFlow(10.0, seed=2)
        samples = [flow.bits_in_slot(SLOT_NS) for _ in range(200)]
        assert min(samples) == 0  # some empty slots
        assert max(samples) > 12_000  # some multi-packet slots

    def test_deterministic_with_seed(self):
        a = PoissonFlow(10.0, seed=3)
        b = PoissonFlow(10.0, seed=3)
        assert [a.bits_in_slot(SLOT_NS) for _ in range(50)] == [
            b.bits_in_slot(SLOT_NS) for _ in range(50)
        ]


class TestPtpClock:
    def test_locked_offsets_small(self):
        clock = PtpClock(jitter_ns=20, seed=1)
        for device in ("du", "ru1", "ru2", "ru3"):
            clock.register(device)
        assert clock.max_pairwise_offset_ns() < 200

    def test_offset_stable_per_device(self):
        clock = PtpClock(seed=1)
        assert clock.offset_ns("ru1") == clock.offset_ns("ru1")

    def test_supports_dmimo_when_locked(self):
        clock = PtpClock(jitter_ns=10, seed=4)
        clock.register("du")
        clock.register("ru1")
        clock.register("ru2")
        assert clock.supports_dmimo()

    def test_free_running_breaks_dmimo(self):
        clock = PtpClock(jitter_ns=20, seed=1, status=SyncStatus.FREE_RUNNING)
        clock.register("ru1")
        clock.register("ru2")
        assert not clock.supports_dmimo()

    def test_single_device_zero_offset(self):
        clock = PtpClock(seed=1)
        clock.register("du")
        assert clock.max_pairwise_offset_ns() == 0.0


class TestDeadlineBudget:
    def test_within_budget(self):
        assert not DeadlineBudget().violated(26_000)

    def test_violation(self):
        assert DeadlineBudget().violated(31_000)

    def test_headroom(self):
        assert DeadlineBudget().headroom_ns(26_000) == pytest.approx(4_000)


class TestVendorProfiles:
    def test_three_stacks(self):
        names = {profile.name for profile in ALL_PROFILES}
        assert names == {"srsRAN", "CapGemini", "Radisys"}

    def test_lookup_case_insensitive(self):
        assert profile_by_name("SRSRAN") is SRSRAN
        assert profile_by_name("capgemini") is CAPGEMINI

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            profile_by_name("nokia")

    def test_profiles_differ_in_tdd(self):
        assert SRSRAN.tdd.pattern != CAPGEMINI.tdd.pattern

    def test_radisys_uses_wider_mantissas(self):
        assert RADISYS.compression.iq_width == 14
        assert SRSRAN.compression.iq_width == 9


class TestCoreNetwork:
    def test_provision_register_session(self):
        core = CoreNetwork()
        core.provision(Subscriber("001010000000001"))
        core.register("001010000000001")
        session = core.establish_session("001010000000001")
        session.account_downlink(1000)
        assert core.total_dl_bits() == 1000

    def test_register_unknown_imsi(self):
        with pytest.raises(RegistrationError):
            CoreNetwork().register("001010000000009")

    def test_session_requires_registration(self):
        core = CoreNetwork()
        core.provision(Subscriber("001010000000001"))
        with pytest.raises(RegistrationError):
            core.establish_session("001010000000001")

    def test_plmn_mismatch_rejected(self):
        core = CoreNetwork(plmn="00102")
        with pytest.raises(ValueError):
            core.provision(Subscriber("001010000000001", plmn="00101"))

    def test_deregister_tears_down_sessions(self):
        core = CoreNetwork()
        core.provision(Subscriber("001010000000001"))
        core.register("001010000000001")
        core.establish_session("001010000000001")
        core.deregister("001010000000001")
        assert not core.sessions_for("001010000000001")

    def test_malformed_imsi_rejected(self):
        with pytest.raises(ValueError):
            Subscriber("12ab")
