"""UE tests: attach, measurements, uplink SINR."""

import pytest

from repro.phy.channel import ChannelModel
from repro.phy.geometry import FloorPlan, Position
from repro.ran.core_network import CoreNetwork
from repro.ran.ue import AttachError, CellView, UserEquipment

BW = 273 * 12 * 30e3


@pytest.fixture
def channel():
    return ChannelModel(seed=5)


@pytest.fixture
def plan():
    return FloorPlan()


def make_view(ru_positions, antennas=None, pci=1):
    antennas = antennas or [4] * len(ru_positions)
    return CellView(
        pci=pci,
        plmn="00101",
        ru_positions=ru_positions,
        ru_antennas=antennas,
        n_subcarriers=273 * 12,
    )


class TestCellView:
    def test_requires_matching_lengths(self, plan):
        with pytest.raises(ValueError):
            make_view(plan.ru_positions(0), antennas=[4])

    def test_requires_rus(self):
        with pytest.raises(ValueError):
            make_view([])


class TestMeasurements:
    def test_rsrp_combines_das_rus(self, plan, channel):
        rus = plan.ru_positions(0)
        ue = UserEquipment("001010000000001", Position(25, 10, 0),
                           channel=channel)
        single = ue.rsrp_dbm(make_view([rus[1]]))
        combined = ue.rsrp_dbm(make_view(rus))
        assert combined > single

    def test_rank_reported(self, plan, channel):
        rus = plan.ru_positions(0)
        ue = UserEquipment("001010000000001",
                           Position(rus[0].x + 3, rus[0].y, 0),
                           channel=channel)
        measurement = ue.measure(make_view([rus[0]]), BW)
        assert measurement.rank == 4
        assert ue.measurements[-1] is measurement

    def test_ue_antennas_cap_rank(self, plan, channel):
        rus = plan.ru_positions(0)
        ue = UserEquipment("001010000000001",
                           Position(rus[0].x + 3, rus[0].y, 0),
                           n_antennas=2, channel=channel)
        assert ue.measure(make_view([rus[0]]), BW).rank <= 2

    def test_uplink_combining_gain(self, plan, channel):
        rus = plan.ru_positions(0)
        ue = UserEquipment("001010000000001", Position(25, 10, 0),
                           channel=channel)
        view = make_view(rus)
        assert ue.uplink_sinr_db(view, BW, combining=True) > ue.uplink_sinr_db(
            view, BW, combining=False
        )

    def test_das_vs_dmimo_link_types(self, plan, channel):
        """DAS layer count is the per-RU antenna count; dMIMO adds them."""
        rus = plan.ru_positions(0)
        ue = UserEquipment("001010000000001", Position(25, 10, 0),
                           channel=channel)
        view = make_view(rus, antennas=[1] * 4)
        assert ue.das_link(view, BW).best_rank() == 1
        assert ue.mimo_link(view, BW).best_rank() > 1


class TestAttach:
    def test_attaches_to_strongest(self, plan, channel):
        rus = plan.ru_positions(0)
        views = [make_view([ru], pci=i) for i, ru in enumerate(rus)]
        ue = UserEquipment("001010000000001",
                           Position(rus[2].x + 1, rus[2].y, 0),
                           channel=channel)
        chosen = ue.scan_and_attach(views)
        assert chosen.pci == 2
        assert ue.serving_pci == 2

    def test_upper_floor_cannot_attach(self, plan, channel):
        """Section 6.2.1: upper-floor UEs fail to attach to a ground cell."""
        ground = make_view([plan.ru_positions(0)[0]])
        ue = UserEquipment("001010000000001", Position(10, 10, 3),
                           channel=channel)
        with pytest.raises(AttachError):
            ue.scan_and_attach([ground])

    def test_forced_pci(self, plan, channel):
        """Section 6.2.3: forcing association by physical cell id."""
        rus = plan.ru_positions(0)
        views = [make_view([rus[0]], pci=10), make_view([rus[0]], pci=11)]
        ue = UserEquipment("001010000000001",
                           Position(rus[0].x + 2, rus[0].y, 0),
                           channel=channel)
        assert ue.scan_and_attach(views, forced_pci=11).pci == 11

    def test_plmn_filter(self, plan, channel):
        rus = plan.ru_positions(0)
        view = make_view([rus[0]])
        foreign = UserEquipment("001020000000001",
                                Position(rus[0].x + 2, rus[0].y, 0),
                                channel=channel, plmn="00102")
        with pytest.raises(AttachError):
            foreign.scan_and_attach([view])

    def test_attach_registers_with_core(self, plan, channel):
        rus = plan.ru_positions(0)
        view = make_view([rus[0]], pci=7)
        core = CoreNetwork()
        ue = UserEquipment("001010000000001",
                           Position(rus[0].x + 2, rus[0].y, 0),
                           channel=channel)
        ue.scan_and_attach([view], cores={7: core})
        assert core.is_registered(ue.imsi)
        assert core.sessions_for(ue.imsi)
        ue.detach()
        assert not core.is_registered(ue.imsi)
