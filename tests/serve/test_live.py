"""LiveRun: the synchronous engine under the asyncio shell.

Everything the service can do reduces to these calls, so they are
pinned without sockets: the unmutated drive is digest-identical to the
batch runner, mutations bump the routing table and journal, rejections
leave no trace, and the pool-level guards (unstarted mutate, run-shape
changes) fail loudly instead of corrupting a run.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.scale.pool import WorkerPool
from repro.scale.runner import run_scenario
from repro.serve.delta import DeltaError, DeltaOp, SpecDelta
from repro.serve.engine import TOPICS, LiveRun, run_to_completion
from tests.serve.builders import make_spec, tenant_dict

ADMIT = SpecDelta(ops=(DeltaOp(op="add_cell", cell=tenant_dict()),))


def finish(live: LiveRun):
    while not live.advance_epoch():
        pass
    return live.collect()


class TestDrive:
    def test_unmutated_live_run_matches_batch_digest(self):
        spec = make_spec(obs=True)
        live = LiveRun(spec, workers=2)
        try:
            result = finish(live)
        finally:
            live.close()
        assert result.digest == run_scenario(spec, workers=1).digest

    def test_begin_twice_rejected(self):
        live = LiveRun(make_spec())
        try:
            live.begin()
            with pytest.raises(RuntimeError, match="already begun"):
                live.begin()
        finally:
            live.close()

    def test_epoch_events_stream_per_fold(self):
        spec = make_spec(obs=True)  # 12 slots / epoch 3 = 4 folds
        live = LiveRun(spec)
        try:
            finish(live)
            events = live.drain_events()
        finally:
            live.close()
        epochs = [e for e in events if e["topic"] == "epochs"]
        assert len(epochs) == 4
        assert live.drain_events() == []  # drain drains
        assert set(e["topic"] for e in events) <= set(TOPICS)

    def test_run_to_completion_deadline(self):
        live = LiveRun(make_spec())
        try:
            with pytest.raises(TimeoutError, match="deadline"):
                run_to_completion(live, pace_s=0.05, deadline_s=0.0)
        finally:
            live.close()


class TestApply:
    def test_admission_journals_and_bumps_routing(self):
        spec = make_spec()
        live = LiveRun(spec, workers=2)
        try:
            live.begin()
            live.advance_epoch()
            pids = [p.pid for p in live.pool._processes]
            applied = live.apply(ADMIT)
            assert applied["rebuilt"] == ["tenant"]
            assert applied["at_slot"] == 3
            assert applied["routing_version"] == 1
            assert live.routes.version == 1
            assert live.routes.routes_for_cell("tenant")
            assert [p.pid for p in live.pool._processes] == pids
            assert live.deltas_applied == [applied]
            deltas = [
                e for e in live.drain_events() if e["topic"] == "deltas"
            ]
            assert deltas and deltas[0]["data"]["rebuilt"] == ["tenant"]
            result = finish(live)
        finally:
            live.close()
        assert result.digest == run_scenario(
            ADMIT.apply(spec), workers=1
        ).digest

    def test_rejected_delta_leaves_no_trace(self):
        spec = make_spec()
        live = LiveRun(spec)
        try:
            live.begin()
            live.advance_epoch()
            bad = SpecDelta(
                ops=(DeltaOp(op="remove_cell", target="ghost"),)
            )
            with pytest.raises(DeltaError, match="unknown cell"):
                live.apply(bad)
            assert live.routes.version == 0
            assert live.deltas_applied == []
            assert live.spec == spec
            result = finish(live)
        finally:
            live.close()
        assert result.digest == run_scenario(spec, workers=1).digest

    def test_status_reports_the_live_picture(self):
        live = LiveRun(make_spec(obs=True), workers=2)
        try:
            live.begin()
            live.advance_epoch()
            live.apply(ADMIT)
            status = live.status()
        finally:
            live.close()
        assert status["scenario"] == "serve-test"
        assert status["workers"] == 2
        assert status["done"] == 3 and status["slots"] == 12
        assert status["finished"] is False
        assert status["routing_version"] == 1
        assert status["deltas_applied"] == 1
        assert status["worker_restarts"] == 0
        assert len(status["worker_pids"]) == 2


class TestPoolGuards:
    def test_mutate_needs_a_started_pool(self):
        spec = make_spec()
        pool = WorkerPool(spec, workers=1)
        with pytest.raises(RuntimeError, match="started, open pool"):
            pool.mutate(ADMIT.apply(spec))

    def test_run_shape_changes_rejected(self):
        spec = make_spec()
        pool = WorkerPool(spec, workers=1)
        try:
            pool.begin()
            stretched = dataclasses.replace(spec, slots=spec.slots * 2)
            with pytest.raises(ValueError):
                pool.mutate(stretched)
            assert pool.spec == spec
        finally:
            pool.close()

    def test_noop_mutation_rebuilds_nothing(self):
        spec = make_spec()
        pool = WorkerPool(spec, workers=1)
        try:
            pool.begin()
            pool.advance_epoch()
            outcome = pool.mutate(dataclasses.replace(spec))
            assert outcome == {
                "rebuilt": [], "removed": [], "replayed_slots": 0,
            }
            while not pool.advance_epoch():
                pass
            digest = pool.collect().digest
        finally:
            pool.close()
        assert digest == run_scenario(spec, workers=1).digest
