"""RoutingTable derivation and the warm-state-preserving rebalance.

The table is the control plane's *read* surface: every (cell, stream)
pair maps to the group chain and worker executing it, derived
deterministically from (spec, shard plan).  The rebalance tests pin the
live-mutation placement policy: surviving groups never move (their
worker state is warm), evicted groups vanish, and admitted groups land
on the lightest shard.
"""

from __future__ import annotations

import pytest

from repro.scale.shard import plan_shards, rebalance_plan
from repro.scale.spec import ScenarioSpec
from repro.serve.delta import DeltaOp, SpecDelta
from repro.serve.routing import Route, RoutingTable
from tests.serve.builders import cell_dict, make_spec, tenant_dict


def table(spec: ScenarioSpec, workers: int = 1, version: int = 0):
    return RoutingTable.from_spec(
        spec, plan_shards(spec, workers), version=version
    )


class TestDerivation:
    def test_one_route_per_ru_stream_and_per_flow(self):
        spec = make_spec()
        t = table(spec)
        # Two cells, each 1 RU + 1 flow.
        assert len(t) == 4
        assert t.cells == ["anchor-a", "anchor-b"]

    def test_eaxc_streams_use_global_ru_ids(self):
        spec = make_spec()
        t = table(spec)
        streams = [r.stream for r in t.routes if r.stream.startswith("eaxc")]
        assert streams == [
            f"eaxc:{spec.ru_id_base('anchor-a')}",
            f"eaxc:{spec.ru_id_base('anchor-b')}",
        ]
        # Global ids: the second cell's base is past the first's RUs.
        assert spec.ru_id_base("anchor-b") == spec.ru_id_base("anchor-a") + 1

    def test_flow_streams_name_ue_and_flow(self):
        t = table(make_spec())
        flow = t.lookup("anchor-a", "flow:anchor-a-ue/cbr-dl")
        assert flow.group == "anchor-a"
        assert flow.chain == ("passthrough",)

    def test_grouped_cells_share_chain_and_wire_fault(self):
        spec = make_spec(cells=[
            cell_dict("c1", pci=1, group="campus", chain=("passthrough",),
                      wire={"kind": "iid_loss", "rate": 0.1, "seed": 1}),
            cell_dict("c2", pci=2, group="campus", chain=("prb_monitor",)),
        ])
        t = table(spec)
        for route in t.routes:
            assert route.group == "campus"
            assert route.chain == ("passthrough", "prb_monitor")
            assert route.wire_fault == "iid_loss"

    def test_lookup_miss_is_a_descriptive_keyerror(self):
        with pytest.raises(KeyError, match="no route for"):
            table(make_spec()).lookup("anchor-a", "eaxc:999")

    def test_to_dict_is_plain_data(self):
        t = table(make_spec(), version=3)
        data = t.to_dict()
        assert data["version"] == 3
        assert all(isinstance(r["chain"], list) for r in data["routes"])

    def test_routes_for_cell_filters(self):
        t = table(make_spec())
        assert {r.cell for r in t.routes_for_cell("anchor-b")} == {
            "anchor-b"
        }
        assert t.routes_for_cell("ghost") == []


class TestCodecVisibility:
    """The operator sees each stream's negotiated codec in its route."""

    def _mixed_spec(self):
        modcomp = cell_dict("dense", pci=3)
        modcomp["codec"] = "modcomp"
        return make_spec(
            cells=[cell_dict("anchor-a", pci=1), modcomp]
        )

    def test_default_codec_is_profile_preference(self):
        t = table(make_spec())
        assert {r.codec for r in t.routes} == {"bfp"}

    def test_pinned_codec_reaches_every_stream_route(self):
        t = table(self._mixed_spec())
        assert {r.codec for r in t.routes_for_cell("dense")} == {"modcomp"}
        assert {r.codec for r in t.routes_for_cell("anchor-a")} == {"bfp"}

    def test_codec_is_in_route_dicts(self):
        data = table(self._mixed_spec()).to_dict()
        assert {r["codec"] for r in data["routes"]} == {"bfp", "modcomp"}

    def test_added_modcomp_cell_routes_with_its_codec(self):
        spec = make_spec()
        cell = cell_dict("tenant-mc", pci=9)
        cell["codec"] = "modcomp"
        mutated = SpecDelta(
            ops=(DeltaOp(op="add_cell", cell=cell),)
        ).apply(spec)
        t = RoutingTable.from_spec(mutated, plan_shards(mutated, 2))
        assert {r.codec for r in t.routes_for_cell("tenant-mc")} == {
            "modcomp"
        }

    def test_rechain_keeps_the_negotiated_codec(self):
        spec = self._mixed_spec()
        mutated = SpecDelta(
            ops=(
                DeltaOp(
                    op="rechain",
                    target="dense",
                    chain=({"stage": "prb_monitor"},),
                ),
            )
        ).apply(spec)
        t = RoutingTable.from_spec(mutated, plan_shards(mutated, 1))
        dense = t.routes_for_cell("dense")
        assert {r.codec for r in dense} == {"modcomp"}
        assert all(r.chain == ("prb_monitor",) for r in dense)


class TestRebalance:
    def four_group_spec(self):
        return make_spec(cells=[
            cell_dict("g1", pci=1, rate_mbps=30),
            cell_dict("g2", pci=2, rate_mbps=20),
            cell_dict("g3", pci=3, rate_mbps=10),
            cell_dict("g4", pci=4, rate_mbps=5),
        ])

    def test_survivors_keep_their_worker(self):
        spec = self.four_group_spec()
        plan = plan_shards(spec, workers=2)
        before = {name: plan.shard_of(name) for name in ("g1", "g2", "g3",
                                                         "g4")}
        delta = SpecDelta(ops=(DeltaOp(op="add_cell", cell=tenant_dict()),))
        rebalanced = rebalance_plan(plan, delta.apply(spec))
        for name, worker in before.items():
            assert rebalanced.shard_of(name) == worker

    def test_admitted_group_lands_on_the_lightest_shard(self):
        spec = self.four_group_spec()
        plan = plan_shards(spec, workers=2)
        delta = SpecDelta(ops=(DeltaOp(op="add_cell", cell=tenant_dict()),))
        mutated = delta.apply(spec)
        rebalanced = rebalance_plan(plan, mutated)
        grouped = mutated.groups()
        loads = [
            sum(
                len(grouped[name])
                for name in shard
                if name != "tenant"
            )
            for shard in rebalanced.shards
        ]
        tenant_worker = rebalanced.shard_of("tenant")
        assert loads[tenant_worker] == min(loads)

    def test_evicted_group_disappears_worker_count_fixed(self):
        spec = self.four_group_spec()
        plan = plan_shards(spec, workers=2)
        delta = SpecDelta(ops=(DeltaOp(op="remove_cell", target="g4"),))
        rebalanced = rebalance_plan(plan, delta.apply(spec))
        assert rebalanced.workers == plan.workers
        assert all("g4" not in shard for shard in rebalanced.shards)

    def test_routing_version_bumps_are_explicit(self):
        spec = make_spec()
        t0 = table(spec, version=0)
        delta = SpecDelta(ops=(DeltaOp(op="add_cell", cell=tenant_dict()),))
        mutated = delta.apply(spec)
        t1 = RoutingTable.from_spec(
            mutated, plan_shards(mutated, 1), version=t0.version + 1
        )
        assert (t0.version, t1.version) == (0, 1)
        assert len(t1) == len(t0) + 2
        assert isinstance(t1.lookup("tenant", "flow:tenant-ue/cbr-ul"),
                          Route)
