"""The control wire format: length-prefixed JSON frames.

Framing bugs are the classic control-plane failure mode (a partial read
mistaken for a frame, an attacker-sized length prefix, concatenated
frames blurring together), so the suite drives the real asyncio stream
helpers over hand-built byte sequences — clean closes, mid-frame
closes, oversize declarations, and back-to-back frames on one stream.
"""

from __future__ import annotations

import asyncio
import json
import struct

import pytest

from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    FrameError,
    decode_body,
    encode_frame,
    error_response,
    event,
    read_frame,
    response,
)


def reader_with(payload: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(payload)
    reader.feed_eof()
    return reader


def read_all(payload: bytes, frames: int):
    async def drive():
        reader = reader_with(payload)
        return [await read_frame(reader) for _ in range(frames)]

    return asyncio.run(drive())


class TestEncoding:
    def test_round_trip(self):
        message = {"id": 4, "op": "apply", "delta": {"ops": []}}
        frame = encode_frame(message)
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4
        assert decode_body(frame[4:]) == message

    def test_encoding_is_canonical(self):
        """Sorted keys, no whitespace — two peers building the same
        message emit the same bytes."""
        a = encode_frame({"b": 1, "a": 2})
        b = encode_frame({"a": 2, "b": 1})
        assert a == b
        assert b[4:] == b'{"a":2,"b":1}'

    def test_non_object_payloads_rejected(self):
        with pytest.raises(FrameError):
            encode_frame(["not", "an", "object"])
        with pytest.raises(FrameError, match="JSON object"):
            decode_body(b"[1,2]")
        with pytest.raises(FrameError, match="not JSON"):
            decode_body(b"\xff\xfe")


class TestReading:
    def test_consecutive_frames_stay_separate(self):
        payload = encode_frame({"id": 1}) + encode_frame({"id": 2})
        assert read_all(payload, 2) == [{"id": 1}, {"id": 2}]

    def test_clean_close_is_eof(self):
        with pytest.raises(EOFError):
            read_all(b"", 1)

    def test_close_inside_header_is_a_frame_error(self):
        with pytest.raises(FrameError, match="frame header"):
            read_all(b"\x00\x00", 1)

    def test_close_inside_body_is_a_frame_error(self):
        frame = encode_frame({"id": 1})
        with pytest.raises(FrameError, match="frame body"):
            read_all(frame[:-2], 1)

    def test_oversize_declaration_rejected_before_reading(self):
        header = struct.pack(">I", MAX_FRAME_BYTES + 1)
        with pytest.raises(FrameError, match="exceeds limit"):
            read_all(header, 1)


class TestMessageShapes:
    def test_ack_shapes(self):
        ok = response(7, digest="abc")
        assert ok == {"id": 7, "ok": True, "digest": "abc"}
        bad = error_response(7, "unknown cell")
        assert bad == {"id": 7, "ok": False, "error": "unknown cell"}

    def test_event_shape(self):
        pushed = event("alerts", 3, {"name": "slo"})
        assert pushed == {"event": "alerts", "seq": 3,
                          "data": {"name": "slo"}}
        # Events are JSON-safe by construction.
        assert json.loads(encode_frame(pushed)[4:].decode()) == pushed
