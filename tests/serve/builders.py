"""Small, fast scenarios for the control-plane suite.

Every builder returns plain dicts / :class:`~repro.scale.spec.
ScenarioSpec` objects sized for sub-second pool runs: a handful of
slots, one RU and one flow per cell, short epochs.  The serve layer's
oracles are digest equalities, so tiny horizons prove as much as long
ones.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.scale.spec import ScenarioSpec


def cell_dict(
    name: str,
    pci: int,
    rate_mbps: float = 20,
    direction: str = "dl",
    group: Optional[str] = None,
    wire: Optional[Dict[str, Any]] = None,
    chain: Sequence[str] = ("passthrough",),
) -> Dict[str, Any]:
    cell: Dict[str, Any] = {
        "name": name,
        "pci": pci,
        "bandwidth_hz": 20_000_000,
        "rus": [{"name": f"{name}-ru1"}],
        "ues": [
            {
                "ue_id": f"{name}-ue",
                "flows": [
                    {
                        "kind": "cbr",
                        "rate_mbps": rate_mbps,
                        "direction": direction,
                    }
                ],
            }
        ],
        "chain": [{"stage": stage} for stage in chain],
    }
    if group is not None:
        cell["group"] = group
    if wire is not None:
        cell["wire"] = wire
    return cell


def make_spec(
    slots: int = 12,
    epoch_slots: int = 3,
    seed: int = 5,
    obs: bool = False,
    slo: Sequence[Dict[str, Any]] = (),
    cells: Optional[Sequence[Dict[str, Any]]] = None,
) -> ScenarioSpec:
    """Two singleton anchor cells by default; obs plane opt-in."""
    if cells is None:
        cells = [
            cell_dict("anchor-a", pci=1, rate_mbps=30, direction="dl"),
            cell_dict("anchor-b", pci=2, rate_mbps=20, direction="ul"),
        ]
    data: Dict[str, Any] = {
        "name": "serve-test",
        "slots": slots,
        "epoch_slots": epoch_slots,
        "seed": seed,
        "cells": list(cells),
    }
    if obs or slo:
        data["obs"] = {
            "enabled": True,
            "stream": True,
            "conformance": True,
            "slo": [dict(entry) for entry in slo],
        }
    return ScenarioSpec.from_dict(data)


def tenant_dict(chain: Sequence[str] = ("passthrough",)) -> Dict[str, Any]:
    return cell_dict("tenant", pci=7, rate_mbps=15, direction="ul",
                     chain=chain)
