"""The mutation oracle: live ``apply`` == from-scratch run of the spec.

Rebase semantics in one property: take a running pool, apply a *drawn*
delta at an epoch barrier, drive to the horizon — the collected digest
must be byte-identical to a batch run of the mutated spec that never
saw a mutation at all.  Hypothesis draws the deltas from the same
generators the wire-form suite uses, so every op kind (admission,
eviction, rechain, fault inject/clear) and every op *ordering* gets
replayed through the real worker-pool machinery, not a model of it.

Each example spawns real worker processes; the horizon is kept tiny and
``max_examples`` low — digest equality over 9 slots proves exactly as
much as over 9000.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conformance.generators import spec_deltas
from repro.scale.pool import WorkerPool
from repro.scale.runner import run_scenario
from repro.serve.delta import DeltaOp, SpecDelta
from tests.serve.builders import make_spec, tenant_dict

SLOTS = 9
EPOCH = 3


def mutate_mid_run(spec, delta, workers=1, mutate_after=1):
    """Drive ``spec``, apply ``delta`` after ``mutate_after`` epochs,
    finish, and return (final digest, mutation outcome)."""
    mutated = delta.apply(spec)
    pool = WorkerPool(spec, workers=workers)
    try:
        pool.begin()
        for _ in range(mutate_after):
            pool.advance_epoch()
        outcome = pool.mutate(mutated)
        while not pool.advance_epoch():
            pass
        result = pool.collect()
    finally:
        pool.close()
    return result.digest, outcome, mutated


@given(data=st.data())
@settings(max_examples=5, deadline=None)
def test_drawn_delta_digest_equals_from_scratch_run(data):
    spec = make_spec(slots=SLOTS, epoch_slots=EPOCH)
    delta = data.draw(spec_deltas(spec, max_ops=3))
    digest, outcome, mutated = mutate_mid_run(spec, delta)
    reference = run_scenario(mutated, workers=1)
    assert digest == reference.digest
    if outcome["rebuilt"]:
        assert outcome["replayed_slots"] == EPOCH


def test_admission_oracle_across_worker_counts():
    """The same mutation lands identically at any pool width."""
    spec = make_spec(slots=SLOTS, epoch_slots=EPOCH)
    delta = SpecDelta(ops=(
        DeltaOp(op="add_cell", cell=tenant_dict()),
        DeltaOp(op="inject_fault", target="tenant",
                fault={"kind": "duplicate", "rate": 0.5}),
    ))
    digest_1, outcome, mutated = mutate_mid_run(spec, delta, workers=1)
    digest_2, _, _ = mutate_mid_run(spec, delta, workers=2)
    reference = run_scenario(mutated, workers=1)
    assert digest_1 == reference.digest
    assert digest_2 == reference.digest
    assert outcome["rebuilt"] == ["tenant"]
    assert outcome["removed"] == []


def test_eviction_nets_out_to_the_base_digest():
    """Admit then evict: the run ends byte-identical to one that never
    hosted the tenant (the fingerprint diff rebuilds nothing extra)."""
    spec = make_spec(slots=SLOTS, epoch_slots=EPOCH)
    admit = SpecDelta(ops=(DeltaOp(op="add_cell", cell=tenant_dict()),))
    evict = SpecDelta(ops=(DeltaOp(op="remove_cell", target="tenant"),))
    pool = WorkerPool(spec, workers=2)
    try:
        pool.begin()
        pool.advance_epoch()
        with_tenant = admit.apply(spec)
        pool.mutate(with_tenant)
        pool.advance_epoch()
        assert evict.apply(with_tenant) == spec
        pool.mutate(spec)
        while not pool.advance_epoch():
            pass
        digest = pool.collect().digest
    finally:
        pool.close()
    assert digest == run_scenario(spec, workers=1).digest
