"""The asyncio service end to end: real sockets, real worker pool.

A compressed version of the ``repro.eval serve`` script, kept in tier-1
so protocol regressions fail fast: a scripted client drives a small
scenario over TCP — subscribe, step, admit a tenant, survive a rejected
request, read routes, collect a digest that matches the batch runner,
and shut the service down cleanly.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.scale.runner import run_scenario
from repro.serve import (
    RequestRejected,
    ServeClient,
    ServeService,
    SpecDelta,
)
from repro.serve.delta import DeltaOp
from tests.serve.builders import make_spec, tenant_dict

ADMIT = SpecDelta(ops=(DeltaOp(op="add_cell", cell=tenant_dict()),))


def drive(spec, script, workers=1):
    async def main():
        service = await ServeService(spec, workers=workers).start()
        try:
            client = await ServeClient.connect(port=service.port)
            try:
                return await asyncio.wait_for(
                    script(client, service), timeout=60
                )
            finally:
                await client.close()
        finally:
            await service.stop()

    return asyncio.run(main())


def test_scripted_session_end_to_end():
    spec = make_spec(obs=True)

    async def script(client, service):
        hello = await client.hello()
        assert hello["scenario"] == "serve-test"
        assert hello["slots"] == 12 and hello["epoch_slots"] == 3
        assert "epochs" in hello["topics"]

        await client.subscribe(["epochs", "deltas"])
        step = await client.step(epochs=1)
        assert step == {"done": 3, "finished": False}
        epoch_event = await client.wait_for_event("epochs", timeout=10)
        assert epoch_event["data"]["epoch"] == 0  # first fold, 0-indexed

        applied = await client.apply(ADMIT)
        assert applied["rebuilt"] == ["tenant"]
        delta_event = await client.wait_for_event("deltas", timeout=10)
        assert delta_event["data"]["routing_version"] == 1

        routes = await client.routes(cell="tenant")
        assert routes["version"] == 1
        assert {r["stream"] for r in routes["routes"]} == {
            "eaxc:3", "flow:tenant-ue/cbr-ul",
        }

        status = await client.status()
        while not (await client.step(epochs=1))["finished"]:
            pass
        assert status["deltas_applied"] == 1

        collected = await client.collect()
        await client.shutdown()
        return collected

    collected = drive(spec, script)
    assert collected["slots"] == 12
    assert "tenant" in collected["groups"]
    reference = run_scenario(ADMIT.apply(spec), workers=1)
    assert collected["digest"] == reference.digest


def test_rejected_requests_leave_the_session_alive():
    spec = make_spec()

    async def script(client, service):
        with pytest.raises(RequestRejected, match="unknown topics"):
            await client.subscribe(["gossip"])
        with pytest.raises(RequestRejected, match="unknown cell"):
            await client.apply(
                SpecDelta(
                    ops=(DeltaOp(op="remove_cell", target="ghost"),)
                )
            )
        with pytest.raises(RequestRejected, match="no routes for cell"):
            await client.routes(cell="ghost")
        with pytest.raises(RequestRejected, match="unknown op"):
            await client.request("reboot")
        # The session survived four rejections: a real request still acks
        # and the run is untouched.
        status = await client.status()
        assert status["routing_version"] == 0
        assert status["deltas_applied"] == 0
        return status

    status = drive(spec, script)
    assert status["done"] == 0


def test_auto_drive_runs_to_the_horizon():
    spec = make_spec(obs=True)

    async def main():
        service = await ServeService(
            spec, workers=1, auto_drive=True
        ).start()
        try:
            client = await ServeClient.connect(port=service.port)
            try:
                await client.subscribe(["epochs"])
                deadline = asyncio.get_running_loop().time() + 30
                while True:
                    status = await client.status()
                    if status["finished"]:
                        break
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.02)
                return await client.collect()
            finally:
                await client.close()
        finally:
            await service.stop()

    collected = asyncio.run(main())
    assert collected["digest"] == run_scenario(spec, workers=1).digest
