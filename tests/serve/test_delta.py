"""SpecDelta: typed validation, lossless wire form, pure application.

The delta layer is the control plane's input boundary — everything a
remote client can do to a running scenario arrives as one of these.  So
the suite pins three things hard: malformed deltas raise typed
:class:`~repro.serve.delta.DeltaError` before any state exists to
corrupt, the wire form round-trips losslessly (Hypothesis-driven, using
the same generators the oracle suite replays), and ``apply`` is a pure
function of (spec, delta).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conformance.generators import spec_deltas
from repro.scale.spec import ScenarioSpec
from repro.serve.delta import (
    DELTA_OPS,
    DeltaError,
    DeltaOp,
    SpecDelta,
    plan_mutation,
)
from tests.serve.builders import make_spec, tenant_dict


def admit(cell=None) -> SpecDelta:
    return SpecDelta(ops=(DeltaOp(op="add_cell", cell=cell or tenant_dict()),))


class TestOpValidation:
    def test_unknown_op_rejected(self):
        with pytest.raises(DeltaError, match="op must be one of"):
            DeltaOp(op="reboot", target="anchor-a")

    def test_add_cell_needs_a_named_cell_dict(self):
        with pytest.raises(DeltaError, match="cell.*spec dict"):
            DeltaOp(op="add_cell")
        with pytest.raises(DeltaError, match="name"):
            DeltaOp(op="add_cell", cell={"pci": 9})

    def test_add_cell_refuses_target(self):
        with pytest.raises(DeltaError, match="not 'target'"):
            DeltaOp(op="add_cell", cell=tenant_dict(), target="anchor-a")

    def test_targeted_ops_need_a_target(self):
        for op in ("remove_cell", "rechain", "inject_fault", "clear_fault"):
            with pytest.raises(DeltaError, match="target"):
                DeltaOp(op=op)

    def test_operand_cross_contamination_rejected(self):
        with pytest.raises(DeltaError, match="does not take a 'cell'"):
            DeltaOp(op="remove_cell", target="x", cell=tenant_dict())
        with pytest.raises(DeltaError, match="does not take a 'chain'"):
            DeltaOp(op="remove_cell", target="x", chain=())
        with pytest.raises(DeltaError, match="does not take a 'fault'"):
            DeltaOp(op="rechain", target="x", chain=(), fault={"kind": "x"})

    def test_rechain_needs_chain_inject_needs_fault(self):
        with pytest.raises(DeltaError, match="chain"):
            DeltaOp(op="rechain", target="x")
        with pytest.raises(DeltaError, match="fault"):
            DeltaOp(op="inject_fault", target="x")

    def test_unknown_keys_rejected_on_decode(self):
        with pytest.raises(DeltaError, match="unknown keys"):
            DeltaOp.from_dict({"op": "remove_cell", "target": "x", "hmm": 1})
        with pytest.raises(DeltaError, match="unknown keys"):
            SpecDelta.from_dict({"ops": [], "version": 2})

    def test_empty_delta_rejected(self):
        with pytest.raises(DeltaError, match="at least one op"):
            SpecDelta(ops=())
        with pytest.raises(DeltaError, match="'ops' list"):
            SpecDelta.from_dict({"name": "empty"})


class TestApply:
    def test_add_cell_appends_without_touching_existing(self):
        spec = make_spec()
        mutated = admit().apply(spec)
        assert [c.name for c in mutated.cells] == [
            "anchor-a", "anchor-b", "tenant",
        ]
        assert mutated.cells[:2] == spec.cells

    def test_apply_is_pure_and_deterministic(self):
        spec = make_spec()
        before = spec.to_dict()
        delta = admit()
        assert delta.apply(spec) == delta.apply(spec)
        assert spec.to_dict() == before

    def test_duplicate_admission_rejected(self):
        spec = make_spec()
        delta = SpecDelta(ops=(
            DeltaOp(op="add_cell", cell=tenant_dict()),
            DeltaOp(op="add_cell", cell=tenant_dict()),
        ))
        with pytest.raises(DeltaError, match="already exists"):
            delta.apply(spec)

    def test_remove_unknown_cell_rejected(self):
        with pytest.raises(DeltaError, match="unknown cell 'ghost'"):
            SpecDelta(ops=(DeltaOp(op="remove_cell", target="ghost"),)).apply(
                make_spec()
            )

    def test_cannot_remove_the_last_cell(self):
        spec = make_spec(cells=[tenant_dict()])
        with pytest.raises(DeltaError, match="last cell"):
            SpecDelta(
                ops=(DeltaOp(op="remove_cell", target="tenant"),)
            ).apply(spec)

    def test_rechain_checks_the_stage_registry(self):
        delta = SpecDelta(ops=(
            DeltaOp(op="rechain", target="anchor-a",
                    chain=({"stage": "warp_drive"},)),
        ))
        with pytest.raises(DeltaError, match="unknown stage 'warp_drive'"):
            delta.apply(make_spec())

    def test_inject_checks_the_fault_registry(self):
        delta = SpecDelta(ops=(
            DeltaOp(op="inject_fault", target="anchor-a",
                    fault={"kind": "emp"}),
        ))
        with pytest.raises(DeltaError, match="unknown fault kind"):
            delta.apply(make_spec())

    def test_clear_without_wire_rejected(self):
        delta = SpecDelta(
            ops=(DeltaOp(op="clear_fault", target="anchor-a"),)
        )
        with pytest.raises(DeltaError, match="no fault to clear"):
            delta.apply(make_spec())

    def test_second_wire_in_one_group_rejected(self):
        from tests.serve.builders import cell_dict

        spec = make_spec(cells=[
            cell_dict("c1", pci=1, group="campus",
                      wire={"kind": "iid_loss", "rate": 0.1, "seed": 1}),
            cell_dict("c2", pci=2, group="campus"),
        ])
        delta = SpecDelta(ops=(
            DeltaOp(op="inject_fault", target="c2",
                    fault={"kind": "duplicate", "rate": 0.5}),
        ))
        with pytest.raises(DeltaError, match="access wires"):
            delta.apply(spec)

    def test_ops_apply_in_order(self):
        """A delta may admit a cell and immediately rechain it."""
        spec = make_spec()
        delta = SpecDelta(ops=(
            DeltaOp(op="add_cell", cell=tenant_dict()),
            DeltaOp(op="rechain", target="tenant",
                    chain=({"stage": "prb_monitor"},)),
        ))
        mutated = delta.apply(spec)
        tenant = next(c for c in mutated.cells if c.name == "tenant")
        assert [s.stage for s in tenant.chain] == ["prb_monitor"]

    def test_invalid_mutated_spec_wrapped_as_delta_error(self):
        bad = tenant_dict()
        bad["rus"] = []
        with pytest.raises(DeltaError, match="mutated spec is invalid"):
            admit(bad).apply(make_spec())


class TestMutationPlan:
    def test_admission_adds_one_group(self):
        spec = make_spec()
        plan = plan_mutation(spec, admit().apply(spec))
        assert plan.added == ("tenant",)
        assert plan.removed == () and plan.changed == ()
        assert plan.rebuilt == ("tenant",)

    def test_rechain_changes_only_its_group(self):
        spec = make_spec()
        delta = SpecDelta(ops=(
            DeltaOp(op="rechain", target="anchor-b",
                    chain=({"stage": "prb_monitor"},)),
        ))
        plan = plan_mutation(spec, delta.apply(spec))
        assert plan.changed == ("anchor-b",)
        assert plan.added == () and plan.removed == ()

    def test_eviction_shifts_later_derived_identities(self):
        """Removing a leading cell legitimately marks later groups
        changed (du ids / RU id bases shift with declaration order)."""
        spec = make_spec()
        delta = SpecDelta(
            ops=(DeltaOp(op="remove_cell", target="anchor-a"),)
        )
        plan = plan_mutation(spec, delta.apply(spec))
        assert plan.removed == ("anchor-a",)
        assert plan.changed == ("anchor-b",)


# -- drawn deltas (the generators the oracle suite replays) -------------------


@given(data=st.data())
@settings(max_examples=50, deadline=None)
def test_drawn_delta_wire_form_round_trips(data):
    spec = make_spec()
    delta = data.draw(spec_deltas(spec))
    assert SpecDelta.from_dict(delta.to_dict()) == delta
    assert SpecDelta.from_json(delta.to_json()) == delta


@given(data=st.data())
@settings(max_examples=50, deadline=None)
def test_drawn_delta_applies_to_a_valid_spec(data):
    spec = make_spec()
    delta = data.draw(spec_deltas(spec))
    mutated = delta.apply(spec)
    # The mutated spec is a first-class spec: serializable, losslessly.
    assert ScenarioSpec.from_dict(mutated.to_dict()) == mutated
    assert all(op.op in DELTA_OPS for op in delta.ops)


@given(data=st.data())
@settings(max_examples=30, deadline=None)
def test_drawn_delta_mutation_plan_is_consistent(data):
    spec = make_spec()
    delta = data.draw(spec_deltas(spec))
    mutated = delta.apply(spec)
    plan = plan_mutation(spec, mutated)
    new_groups = set(mutated.group_fingerprints())
    old_groups = set(spec.group_fingerprints())
    assert set(plan.added) == new_groups - old_groups
    assert set(plan.removed) == old_groups - new_groups
    assert set(plan.changed) <= old_groups & new_groups
