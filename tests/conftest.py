"""Shared fixtures for the test suite."""

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.fronthaul.ethernet import MacAddress
from repro.ran.cell import CellConfig

# CI runs the property suites derandomized so a red build is always
# reproducible locally; select with HYPOTHESIS_PROFILE=ci.
settings.register_profile("ci", derandomize=True, deadline=None)
if os.environ.get("HYPOTHESIS_PROFILE"):
    settings.load_profile(os.environ["HYPOTHESIS_PROFILE"])


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def du_mac():
    return MacAddress.from_string("02:00:00:00:00:01")


@pytest.fixture
def ru_mac():
    return MacAddress.from_string("02:00:00:00:10:01")


@pytest.fixture
def cell_40mhz():
    return CellConfig(pci=1, bandwidth_hz=40_000_000, n_antennas=2,
                      max_dl_layers=2)


@pytest.fixture
def cell_100mhz():
    return CellConfig(pci=2)


def random_prb_samples(rng, n_prbs: int, amplitude: int = 4000) -> np.ndarray:
    """Random int16 IQ samples shaped (n_prbs, 24)."""
    return rng.integers(-amplitude, amplitude, size=(n_prbs, 24)).astype(
        np.int16
    )
