"""Vendor interoperability: the same middlebox code against all three RAN
stacks (Section 6.2: srsRAN, CapGemini, Radisys — "without any source code
modifications, and with only small configuration parameter changes").
"""

import pytest

from repro.apps.das import DasMiddlebox
from repro.apps.prb_monitor import PrbMonitorMiddlebox
from repro.fronthaul.cplane import Direction
from repro.ran.cell import CellConfig
from repro.ran.du import DistributedUnit
from repro.ran.ru import RadioUnit, RuConfig
from repro.ran.stacks import ALL_PROFILES
from repro.ran.traffic import ConstantBitrateFlow
from repro.sim.network_sim import FronthaulNetwork


def build_network(profile, n_rus=2, seed=20):
    cell = CellConfig(
        pci=1,
        bandwidth_hz=40_000_000,
        n_antennas=2,
        max_dl_layers=2,
        compression=profile.compression,
    )
    du = DistributedUnit(du_id=1, cell=cell, profile=profile,
                         symbols_per_slot=1, seed=seed)
    rus = [
        RadioUnit(
            ru_id=i,
            config=RuConfig(num_prb=cell.num_prb, n_antennas=2,
                            compression=profile.compression),
            du_mac=du.mac,
            seed=seed,
        )
        for i in range(n_rus)
    ]
    das = DasMiddlebox(du_mac=du.mac, ru_macs=[ru.mac for ru in rus])
    monitor = PrbMonitorMiddlebox(carrier_num_prb=cell.num_prb)
    du.scheduler.add_ue("ue", dl_layers=2)
    du.scheduler.update_ue_quality("ue", dl_aggregate_se=10.0, ul_se=3.0)
    du.attach_flow("ue", ConstantBitrateFlow(100, "dl"), Direction.DOWNLINK)
    du.attach_flow("ue", ConstantBitrateFlow(15, "ul"), Direction.UPLINK)
    network = FronthaulNetwork(middleboxes=[monitor, das])
    network.add_du(du)
    for ru in rus:
        network.add_ru(ru)
    return network, du, rus, das, monitor


@pytest.mark.parametrize("profile", ALL_PROFILES, ids=lambda p: p.name)
class TestInterop:
    def test_das_works_unmodified(self, profile):
        """The identical DAS middlebox instance type handles every stack's
        packet stream: different TDD patterns, compression widths."""
        network, du, rus, das, monitor = build_network(profile)
        reports = network.run(12)
        assert sum(r.undeliverable for r in reports) == 0
        assert das.merged_uplink_symbols > 0
        assert all(ru.counters.uplane_received > 0 for ru in rus)
        assert all(ru.counters.unsolicited_uplane == 0 for ru in rus)
        assert du.counters.ul_bits > 0

    def test_monitor_matches_ground_truth(self, profile):
        network, du, rus, das, monitor = build_network(profile)
        network.run(12)
        # The estimate is computed from this vendor's own BFP exponents
        # (width 9 or 14) and must track its scheduler log.
        from repro.fronthaul.cplane import Direction as D

        truth = du.scheduler.average_utilization(D.DOWNLINK)
        estimates = [
            e.utilization
            for e in monitor.estimates
            if e.direction is D.DOWNLINK
        ]
        assert estimates
        n_dl_slots = sum(
            1 for entry in du.scheduler.mac_log if entry.direction is D.DOWNLINK
        )
        normalized = sum(estimates) / n_dl_slots
        assert normalized == pytest.approx(truth, abs=0.08)

    def test_rans_keep_vendor_tdd_cadence(self, profile):
        """Per-vendor TDD patterns change packet cadence, not correctness."""
        network, du, rus, das, monitor = build_network(profile)
        network.run(len(profile.tdd.pattern) * 2)
        assert das.stats.rx_packets > 0
