"""End-to-end RU sharing: two DUs multiplexed onto one 100 MHz RU.

Verifies the Section 6.2.3 story at packet level: each DU operates as if
it owned the RU, the RU sees one consistent controller, downlink PRBs land
at the right place in the RU spectrum, uplink slices return to the right
DU, and PRACH requests from both DUs reach the RU translated and combined.
"""

import numpy as np
import pytest

from repro.apps.ru_sharing import RuSharingMiddlebox, SharedDuConfig
from repro.fronthaul.compression import SAMPLES_PER_PRB
from repro.fronthaul.cplane import Direction
from repro.fronthaul.spectrum import PrbGrid, split_ru_spectrum
from repro.phy.iq import int16_to_iq
from repro.ran.cell import CellConfig
from repro.ran.du import DistributedUnit
from repro.ran.ru import RadioUnit, RuConfig
from repro.ran.traffic import ConstantBitrateFlow
from repro.sim.network_sim import FronthaulNetwork


@pytest.fixture
def sharing_setup():
    ru_grid = PrbGrid(3.46e9, 273)
    grids = split_ru_spectrum(ru_grid, [106, 106])
    ru = RadioUnit(ru_id=1, config=RuConfig(num_prb=273, n_antennas=2),
                   seed=10)
    dus = []
    configs = []
    for index, grid in enumerate(grids, start=1):
        cell = CellConfig(
            pci=index,
            bandwidth_hz=40_000_000,
            center_frequency_hz=grid.center_frequency_hz,
            n_antennas=2,
            max_dl_layers=2,
        )
        du = DistributedUnit(du_id=index, cell=cell, ru_mac=ru.mac,
                             symbols_per_slot=1, record_reference=True,
                             seed=10 + index)
        du.scheduler.add_ue("ue", dl_layers=2)
        du.scheduler.update_ue_quality("ue", dl_aggregate_se=10.0, ul_se=3.0)
        du.attach_flow("ue", ConstantBitrateFlow(80, "dl"),
                       Direction.DOWNLINK)
        du.attach_flow("ue", ConstantBitrateFlow(15, "ul"), Direction.UPLINK)
        dus.append(du)
        configs.append(SharedDuConfig(du_id=index, mac=du.mac, grid=grid))
    sharing = RuSharingMiddlebox(ru_mac=ru.mac, ru_grid=ru_grid, dus=configs)
    ru.du_mac = sharing.mac
    network = FronthaulNetwork(middleboxes=[sharing])
    for du in dus:
        network.add_du(du)
    network.add_ru(ru)
    return network, dus, ru, sharing, configs


class TestDownlink:
    def test_ru_accepts_multiplexed_stream(self, sharing_setup):
        network, dus, ru, sharing, configs = sharing_setup
        reports = network.run(6)
        assert ru.counters.uplane_received > 0
        assert ru.counters.unsolicited_uplane == 0
        assert sum(r.undeliverable for r in reports) == 0

    def test_du_prbs_land_at_spectrum_offsets(self, sharing_setup):
        network, dus, ru, sharing, configs = sharing_setup
        network.run(6)
        ru_grid = PrbGrid(3.46e9, 273)
        checked = 0
        for du, config in zip(dus, configs):
            offset = int(round(ru_grid.offset_of(config.grid)))
            for (time, port), reference in du.dl_reference.items():
                grid = ru.transmit_grid(time, port)
                if grid is None:
                    continue
                du_band = grid[offset * 12 : (offset + 106) * 12]
                error = np.abs(du_band - int16_to_iq(reference)).max()
                assert error < 0.05
                checked += 1
        assert checked >= 8

    def test_aligned_path_no_recompression(self, sharing_setup):
        network, dus, ru, sharing, configs = sharing_setup
        network.run(6)
        assert sharing.aligned_copies > 0
        assert sharing.misaligned_copies == 0


class TestUplink:
    def test_each_du_receives_its_slice(self, sharing_setup, rng):
        network, dus, ru, sharing, configs = sharing_setup
        ru_grid = PrbGrid(3.46e9, 273)
        from repro.phy.iq import QamModulator

        modulator = QamModulator(16)
        transmitted = {}

        def ue_uplink(ru_obj, position, time, port):
            """Each DU's UE transmits in its own slice of the RU band."""
            key = time
            if key not in transmitted:
                n_sc = ru_obj.config.num_prb * SAMPLES_PER_PRB
                grid = np.zeros(n_sc, dtype=np.complex128)
                blocks = {}
                for du, config in zip(dus, configs):
                    pending = du._pending_ul.get(time.slot_key())
                    if not pending:
                        continue
                    offset = int(round(ru_grid.offset_of(config.grid)))
                    for allocation in pending:
                        start = (offset + allocation.start_prb) * SAMPLES_PER_PRB
                        count = allocation.num_prb * SAMPLES_PER_PRB
                        data = rng.integers(0, 16, count)
                        grid[start : start + count] = modulator.modulate(data) * 0.4
                        blocks[(du.du_id, allocation.prb_range)] = data
                transmitted[key] = (grid, blocks)
            return transmitted[key][0]

        network.run(12, uplink_signal_fn=ue_uplink)
        decoded = 0
        for du in dus:
            assert du.counters.ul_packets > 0
            for reception in du.uplink_receptions:
                entry = transmitted.get(reception.time)
                if entry is None:
                    continue
                _, blocks = entry
                iq = du.uplink_iq(reception.time, reception.ru_port)
                complex_grid = int16_to_iq(iq).reshape(-1)
                for (du_id, (start, end)), data in blocks.items():
                    if du_id != du.du_id:
                        continue
                    block = complex_grid[start * 12 : end * 12]
                    scale = np.sqrt(np.mean(np.abs(block) ** 2))
                    if scale == 0:
                        continue
                    hits = np.mean(modulator.demodulate(block / scale) == data)
                    assert hits > 0.95
                    decoded += 1
        assert decoded > 0

    def test_uplink_bits_accounted_per_du(self, sharing_setup):
        network, dus, ru, sharing, configs = sharing_setup
        network.run(12)
        for du in dus:
            assert du.counters.ul_bits > 0


class TestPrach:
    def test_prach_round_trip_both_dus(self, sharing_setup):
        """Both DUs' PRACH requests reach the RU combined; the RU's PRACH
        data returns demultiplexed to each DU (Algorithm 3)."""
        network, dus, ru, sharing, configs = sharing_setup
        network.run(50)  # spans a PRACH period (slot offset 4, period 40)
        for du in dus:
            assert du.counters.prach_detections > 0, (
                f"DU {du.du_id} received no PRACH occasions"
            )
