"""Failure injection: lost packets, late RUs, failover under live traffic.

The fronthaul's strict timing windows mean loss is survivable but must be
contained: a DAS merge missing one RU's packet abandons that symbol, and
a dead DU is replaced by the standby within milliseconds while traffic
keeps flowing.
"""


from repro.apps.das import DasMiddlebox
from repro.apps.resilience import ResilienceMiddlebox
from repro.core.middlebox import Middlebox
from repro.fronthaul.cplane import Direction
from repro.ran.cell import CellConfig
from repro.ran.du import DistributedUnit
from repro.ran.ru import RadioUnit, RuConfig
from repro.ran.traffic import ConstantBitrateFlow
from repro.sim.network_sim import FronthaulNetwork


class LossyWire(Middlebox):
    """Drops selected packets before they reach the next middlebox."""

    app_name = "lossy_wire"

    def __init__(self, should_drop, **kwargs):
        super().__init__(**kwargs)
        self.should_drop = should_drop
        self.dropped = 0

    def _apply(self, ctx, packet):
        if self.should_drop(packet):
            self.dropped += 1
            ctx.drop(packet)
        else:
            ctx.forward(packet)

    on_cplane = _apply
    on_uplane = _apply


def build_das(n_rus=2, seed=40):
    cell = CellConfig(pci=1, bandwidth_hz=40_000_000, n_antennas=2,
                      max_dl_layers=2)
    du = DistributedUnit(du_id=1, cell=cell, symbols_per_slot=1, seed=seed)
    rus = [
        RadioUnit(ru_id=i, config=RuConfig(num_prb=cell.num_prb,
                                           n_antennas=2),
                  du_mac=du.mac, seed=seed)
        for i in range(n_rus)
    ]
    das = DasMiddlebox(du_mac=du.mac, ru_macs=[ru.mac for ru in rus])
    du.scheduler.add_ue("ue", dl_layers=2)
    du.scheduler.update_ue_quality("ue", dl_aggregate_se=10.0, ul_se=3.0)
    du.attach_flow("ue", ConstantBitrateFlow(100, "dl"), Direction.DOWNLINK)
    du.attach_flow("ue", ConstantBitrateFlow(20, "ul"), Direction.UPLINK)
    return cell, du, rus, das


class TestDasUnderLoss:
    def test_lost_ru_uplink_blocks_only_that_symbol(self):
        cell, du, rus, das = build_das()
        lost_ru = rus[1].mac

        def drop_some(packet):
            # Drop RU 1's uplink for even-numbered slots.
            return (
                packet.direction is Direction.UPLINK
                and packet.eth.src == lost_ru
                and packet.time.slot % 2 == 0
            )

        # The wire sits between the middlebox and the RUs: downlink order
        # is [das, wire], so uplink traverses wire -> das.
        wire = LossyWire(drop_some)
        network = FronthaulNetwork(middleboxes=[das, wire])
        network.add_du(du)
        for ru in rus:
            network.add_ru(ru)
        network.run(10)
        # Some merges completed (odd slots), some are stuck in the cache.
        assert das.merged_uplink_symbols > 0
        assert len(das.cache) > 0
        stuck = das.flush_stale(before_slot_key=(255, 9, 1))
        assert stuck > 0
        assert das.missed_merge_deadlines == stuck
        assert len(das.cache) == 0

    def test_total_ru_loss_stalls_all_merges(self):
        cell, du, rus, das = build_das()
        dead_ru = rus[1].mac
        wire = LossyWire(
            lambda p: p.direction is Direction.UPLINK and p.eth.src == dead_ru
        )
        network = FronthaulNetwork(middleboxes=[das, wire])
        network.add_du(du)
        for ru in rus:
            network.add_ru(ru)
        network.run(10)
        assert das.merged_uplink_symbols == 0
        assert du.counters.ul_packets == 0

    def test_duplicated_uplink_does_not_double_merge(self, rng):
        """A retransmitting RU must not inflate the merged signal."""
        cell, du, rus, das = build_das()

        class Duplicator(Middlebox):
            app_name = "dup"

            def on_uplane(self, ctx, packet):
                if packet.direction is Direction.UPLINK:
                    for copy in ctx.replicate(packet, 1):
                        ctx.forward(copy)
                ctx.forward(packet)

            def on_cplane(self, ctx, packet):
                ctx.forward(packet)

        network = FronthaulNetwork(middleboxes=[das, Duplicator()])
        network.add_du(du)
        for ru in rus:
            network.add_ru(ru)
        reports = network.run(10)
        # Every merge used exactly one packet per RU (duplicates dropped).
        assert das.merged_uplink_symbols > 0
        delivered = du.counters.ul_packets + du.counters.prach_detections
        assert delivered == das.merged_uplink_symbols


class TestFailoverUnderTraffic:
    def test_standby_takes_over_live_network(self):
        cell = CellConfig(pci=1, bandwidth_hz=40_000_000, n_antennas=2,
                          max_dl_layers=2)
        primary = DistributedUnit(du_id=1, cell=cell, symbols_per_slot=1,
                                  seed=41)
        standby = DistributedUnit(du_id=2, cell=cell, symbols_per_slot=1,
                                  seed=42)
        ru = RadioUnit(ru_id=1, config=RuConfig(num_prb=cell.num_prb,
                                                n_antennas=2))
        for du in (primary, standby):
            du.ru_mac = ru.mac
            du.scheduler.add_ue("ue", dl_layers=2)
            du.scheduler.update_ue_quality("ue", dl_aggregate_se=10.0,
                                           ul_se=3.0)
            du.attach_flow("ue", ConstantBitrateFlow(100, "dl"),
                           Direction.DOWNLINK)
            du.attach_flow("ue", ConstantBitrateFlow(20, "ul"),
                           Direction.UPLINK)
        box = ResilienceMiddlebox(
            primary_du=primary.mac,
            standby_du=standby.mac,
            ru_mac=ru.mac,
            silence_threshold_ns=2 * cell.numerology.slot_duration_ns,
        )
        ru.du_mac = box.mac
        network = FronthaulNetwork(middleboxes=[box])
        network.add_du(primary)
        network.add_du(standby)
        network.add_ru(ru)

        network.run(6)
        assert box.active_du == primary.mac
        received_before = ru.counters.uplane_received

        # Primary dies: stop generating its packets by detaching flows and
        # removing it from the network.
        network._dus.pop(primary.mac.to_int())
        network.run(10)
        assert box.events, "failover should have triggered"
        assert box.active_du == standby.mac
        # The RU keeps receiving downlink — now from the standby.
        assert ru.counters.uplane_received > received_before
        assert standby.counters.ul_bits > 0
