"""Middlebox chaining: RU sharing composed with DAS (Figure 12).

Two MNOs' DUs share four RUs: each DU's traffic passes through its DAS
middlebox (fan-out to the four RUs) and then through per-RU sharing
middleboxes (multiplexing the two MNOs onto each RU).
"""

import pytest

from repro.apps.das import DasMiddlebox
from repro.apps.ru_sharing import RuSharingMiddlebox, SharedDuConfig
from repro.fronthaul.cplane import Direction
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.spectrum import PrbGrid, split_ru_spectrum
from repro.ran.cell import CellConfig
from repro.ran.du import DistributedUnit
from repro.ran.ru import RadioUnit, RuConfig
from repro.ran.traffic import ConstantBitrateFlow

RU_GRID = PrbGrid(3.46e9, 273)
N_RUS = 2  # two shared RUs keep the packet-level test fast


@pytest.fixture
def chained_setup():
    grids = split_ru_spectrum(RU_GRID, [106, 106])
    rus = [
        RadioUnit(ru_id=i, config=RuConfig(num_prb=273, n_antennas=2),
                  seed=30)
        for i in range(N_RUS)
    ]
    dus = []
    for index, grid in enumerate(grids, start=1):
        cell = CellConfig(
            pci=index,
            bandwidth_hz=40_000_000,
            center_frequency_hz=grid.center_frequency_hz,
            n_antennas=2,
            max_dl_layers=2,
        )
        du = DistributedUnit(du_id=index, cell=cell, symbols_per_slot=1,
                             seed=30 + index)
        du.scheduler.add_ue("ue", dl_layers=2)
        du.scheduler.update_ue_quality("ue", dl_aggregate_se=10.0, ul_se=3.0)
        du.attach_flow("ue", ConstantBitrateFlow(60, "dl"),
                       Direction.DOWNLINK)
        du.attach_flow("ue", ConstantBitrateFlow(10, "ul"), Direction.UPLINK)
        dus.append(du)

    # Per-MNO virtual RU addresses for each physical RU: the DAS stage
    # fans each DU out to per-RU virtual MACs; the sharing stage on each
    # RU multiplexes the two MNOs.
    vru_macs = {
        (du.du_id, ru.ru_id): MacAddress.from_int(0x5000 + du.du_id * 16 + ru.ru_id)
        for du in dus
        for ru in rus
    }
    das_boxes = [
        DasMiddlebox(
            du_mac=du.mac,
            ru_macs=[vru_macs[(du.du_id, ru.ru_id)] for ru in rus],
            name=f"das-mno{du.du_id}",
        )
        for du in dus
    ]
    sharing_boxes = []
    for ru in rus:
        configs = [
            SharedDuConfig(
                du_id=du.du_id,
                mac=vru_macs[(du.du_id, ru.ru_id)],
                grid=grid,
            )
            for du, grid in zip(dus, grids)
        ]
        sharing_boxes.append(
            RuSharingMiddlebox(ru_mac=ru.mac, ru_grid=RU_GRID, dus=configs,
                               name=f"sharing-ru{ru.ru_id}")
        )
        ru.du_mac = sharing_boxes[-1].mac
    return dus, rus, das_boxes, sharing_boxes, vru_macs


class TestChainedDeployment:
    def run_chain(self, chained_setup, n_slots=8):
        dus, rus, das_boxes, sharing_boxes, vru_macs = chained_setup
        # The chain: DAS boxes (per MNO) then sharing boxes (per RU).
        # Sharing boxes identify DUs by the DAS-emitted virtual MACs, so
        # the DAS stage must stamp per-(mno, ru) source addresses; we
        # emulate the VF wiring by rewriting sources after fan-out.
        reports = []
        for _ in range(n_slots):
            downlink = []
            for du, das in zip(dus, das_boxes):
                packets = du.advance_slot()
                packets.sort(key=lambda p: p.is_uplane)
                for packet in packets:
                    for emission in das.process(packet).emissions:
                        out = emission.packet
                        # Stamp the MNO-specific virtual source for the
                        # addressed RU's sharing box.
                        target_vru = out.eth.dst
                        out.eth.src = target_vru
                        downlink.append(out)
            downlink.sort(key=lambda p: p.is_uplane)
            # Deliver to the sharing box owning the addressed virtual MAC.
            for packet in downlink:
                for ru, sharing in zip(rus, sharing_boxes):
                    owned = {
                        config.mac.to_int()
                        for config in sharing.dus.values()
                    }
                    if packet.eth.dst.to_int() in owned:
                        for emission in sharing.process(packet).emissions:
                            ru.receive(emission.packet)
            # Uplink: RUs answer, sharing demuxes to virtual MACs, DAS
            # merges back to the DUs.
            for ru, sharing in zip(rus, sharing_boxes):
                for time, port in ru.pending_uplink_symbols():
                    for packet in ru.build_uplink(time, port):
                        for emission in sharing.process(packet).emissions:
                            out = emission.packet
                            # Demuxed frames address the virtual DU MACs;
                            # map them into the right DAS group.
                            for du, das in zip(dus, das_boxes):
                                vmacs = {
                                    vru_macs[(du.du_id, r.ru_id)].to_int()
                                    for r in rus
                                }
                                if out.eth.dst.to_int() in vmacs:
                                    out.eth.src = out.eth.dst
                                    for final in das.process(out).emissions:
                                        du.receive(final.packet)
                ru._ul_requests.clear()
        return dus, rus, das_boxes, sharing_boxes

    def test_downlink_reaches_both_rus_multiplexed(self, chained_setup):
        dus, rus, das_boxes, sharing_boxes = self.run_chain(chained_setup)
        for ru in rus:
            assert ru.counters.uplane_received > 0
            assert ru.counters.unsolicited_uplane == 0
        # Both sharing boxes saw both MNOs' requests.
        for sharing in sharing_boxes:
            assert sharing.aligned_copies > 0

    def test_uplink_merged_back_per_mno(self, chained_setup):
        dus, rus, das_boxes, sharing_boxes = self.run_chain(chained_setup)
        for du, das in zip(dus, das_boxes):
            assert das.merged_uplink_symbols > 0
            assert du.counters.ul_bits > 0

    def test_das_and_sharing_compose_without_modification(self, chained_setup):
        """Chaining needs no changes to either middlebox implementation —
        the claim of Section 6.3.2."""
        dus, rus, das_boxes, sharing_boxes = self.run_chain(chained_setup)
        assert all(box.stats.rx_packets > 0 for box in das_boxes)
        assert all(box.stats.rx_packets > 0 for box in sharing_boxes)
