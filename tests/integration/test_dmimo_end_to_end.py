"""End-to-end dMIMO: a 4-port DU driving two 2-port RUs via the middlebox.

Verifies the Section 6.2.2 story: the DU believes it owns one 4-antenna
RU, each physical RU sees a consistent 2-port stream, all four spatial
streams reach the air, and the SSB is replicated to the secondary RU.
"""

import numpy as np
import pytest

from repro.apps.dmimo import DmimoMiddlebox, RuPortMap, SsbSchedule
from repro.fronthaul.cplane import Direction
from repro.phy.iq import int16_to_iq
from repro.ran.cell import CellConfig
from repro.ran.du import DistributedUnit
from repro.ran.ru import RadioUnit, RuConfig
from repro.ran.traffic import ConstantBitrateFlow
from repro.sim.network_sim import FronthaulNetwork


@pytest.fixture
def dmimo_setup():
    cell = CellConfig(pci=3, bandwidth_hz=40_000_000, n_antennas=4,
                      max_dl_layers=4, ssb_period_slots=10)
    du = DistributedUnit(du_id=1, cell=cell, symbols_per_slot=6,
                         record_reference=True, seed=8)
    rus = [
        RadioUnit(ru_id=i, config=RuConfig(num_prb=cell.num_prb, n_antennas=2),
                  du_mac=du.mac, seed=8)
        for i in range(2)
    ]
    port_map = RuPortMap(groups=((rus[0].mac, 2), (rus[1].mac, 2)))
    ssb_start, ssb_end = cell.ssb_prb_range
    ssb = SsbSchedule(
        period_slots=cell.ssb_period_slots,
        symbols=cell.ssb_symbols,
        prb_start=ssb_start,
        num_prb=ssb_end - ssb_start,
    )
    dmimo = DmimoMiddlebox(du_mac=du.mac, port_map=port_map, ssb=ssb)
    du.scheduler.add_ue("ue", dl_layers=4)
    du.scheduler.update_ue_quality("ue", dl_aggregate_se=16.0, ul_se=3.0)
    du.attach_flow("ue", ConstantBitrateFlow(200, "dl"), Direction.DOWNLINK)
    du.attach_flow("ue", ConstantBitrateFlow(30, "ul"), Direction.UPLINK)
    network = FronthaulNetwork(middleboxes=[dmimo])
    network.add_du(du)
    for ru in rus:
        network.add_ru(ru)
    return network, du, rus, dmimo


class TestVirtualRuIllusion:
    def test_all_four_streams_reach_the_air(self, dmimo_setup):
        network, du, rus, dmimo = dmimo_setup
        network.run(6)
        # Each RU transmits on its two local ports.
        for ru in rus:
            ports = {port for _, port in ru.transmitted_symbols()}
            assert ports == {0, 1}

    def test_rus_never_see_foreign_ports(self, dmimo_setup):
        network, du, rus, dmimo = dmimo_setup
        network.run(6)
        for ru in rus:
            assert ru.counters.unsolicited_uplane == 0

    def test_stream_content_matches_du_layers(self, dmimo_setup):
        """Global layer k's IQ lands on the right physical antenna."""
        network, du, rus, dmimo = dmimo_setup
        network.run(6)
        checked = 0
        for (time, global_port), reference in du.dl_reference.items():
            ru = rus[0] if global_port < 2 else rus[1]
            local_port = global_port % 2
            grid = ru.transmit_grid(time, local_port)
            if grid is None:
                continue
            error = np.abs(grid - int16_to_iq(reference)).max()
            if global_port == 0 or not du.cell.is_ssb_slot(
                time.absolute_slot(du.cell.numerology)
            ):
                assert error < 0.05
                checked += 1
        assert checked > 8

    def test_uplink_returns_on_global_ports(self, dmimo_setup):
        network, du, rus, dmimo = dmimo_setup
        network.run(10)
        ports = {reception.ru_port for reception in du.uplink_receptions}
        assert ports == {0, 1, 2, 3}

    def test_uplink_bits_accounted(self, dmimo_setup):
        network, du, rus, dmimo = dmimo_setup
        network.run(10)
        assert du.counters.ul_bits > 0


class TestSsbReplication:
    def test_secondary_ru_transmits_ssb(self, dmimo_setup):
        """Without the middlebox only RU 1 port 0 carries the SSB; with it
        RU 2's first antenna does too (Section 4.2)."""
        network, du, rus, dmimo = dmimo_setup
        network.run(3)  # slot 0 is an SSB slot
        assert dmimo.ssb_copies > 0
        reference = du.ssb_reference()
        ssb_start, ssb_end = du.cell.ssb_prb_range

        def correlation(ru, port, symbol):
            from repro.fronthaul.timing import SymbolTime

            grid = ru.transmit_grid(SymbolTime(0, 0, 0, symbol), port)
            if grid is None:
                return 0.0
            block = grid[ssb_start * 12 : ssb_end * 12]
            return float(
                np.abs(np.vdot(block, reference))
                / (np.linalg.norm(block) * np.linalg.norm(reference) + 1e-12)
            )

        ssb_symbol = du.cell.ssb_symbols[0]
        assert correlation(rus[0], 0, ssb_symbol) > 0.9  # primary
        assert correlation(rus[1], 0, ssb_symbol) > 0.9  # replicated
        assert correlation(rus[1], 1, ssb_symbol) < 0.3  # other ports clean
