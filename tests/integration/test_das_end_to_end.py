"""End-to-end DAS: DU <-> DAS middlebox <-> RUs <-> air <-> UE.

Verifies the Section 6.2.1 story at packet level: downlink replication
makes every RU transmit the identical cell signal, and the uplink merge
recovers the UE's modulated data with a combining gain over any single RU.
"""

import numpy as np
import pytest

from repro.apps.das import DasMiddlebox
from repro.fronthaul.compression import SAMPLES_PER_PRB
from repro.fronthaul.cplane import Direction
from repro.phy.geometry import Position
from repro.phy.iq import QamModulator, int16_to_iq
from repro.ran.du import DistributedUnit
from repro.ran.ru import RadioUnit, RuConfig
from repro.ran.traffic import ConstantBitrateFlow
from repro.sim.network_sim import FronthaulNetwork, RadioEnvironment


@pytest.fixture
def das_setup(cell_40mhz):
    du = DistributedUnit(du_id=1, cell=cell_40mhz, symbols_per_slot=1,
                         record_reference=True, seed=6)
    rus = [
        RadioUnit(ru_id=i, config=RuConfig(num_prb=cell_40mhz.num_prb,
                                           n_antennas=2),
                  du_mac=du.mac, seed=6)
        for i in range(2)
    ]
    das = DasMiddlebox(du_mac=du.mac, ru_macs=[ru.mac for ru in rus])
    du.scheduler.add_ue("ue", dl_layers=2)
    du.scheduler.update_ue_quality("ue", dl_aggregate_se=10.0, ul_se=3.0)
    du.attach_flow("ue", ConstantBitrateFlow(120, "dl"), Direction.DOWNLINK)
    du.attach_flow("ue", ConstantBitrateFlow(30, "ul"), Direction.UPLINK)
    network = FronthaulNetwork(middleboxes=[das])
    network.add_du(du)
    network.add_ru(rus[0], Position(10, 10, 0, height=3.0))
    network.add_ru(rus[1], Position(40, 10, 0, height=3.0))
    return network, du, rus, das


class TestDownlink:
    def test_both_rus_transmit_identical_signal(self, das_setup):
        network, du, rus, das = das_setup
        network.run(5)
        symbols_a = rus[0].transmitted_symbols()
        symbols_b = rus[1].transmitted_symbols()
        assert symbols_a and symbols_a == symbols_b
        for key in symbols_a:
            grid_a = rus[0].transmit_grid(*key)
            grid_b = rus[1].transmit_grid(*key)
            assert np.array_equal(grid_a, grid_b)

    def test_transmitted_signal_matches_du_reference(self, das_setup):
        network, du, rus, das = das_setup
        network.run(5)
        for (time, port), reference in du.dl_reference.items():
            grid = rus[0].transmit_grid(time, port)
            assert grid is not None
            error = np.abs(grid - int16_to_iq(reference)).max()
            assert error < 0.05  # BFP quantization only


class TestUplinkMergeDecode:
    def test_merged_uplink_decodes_ue_data(self, das_setup, rng):
        """The DU recovers the UE's QAM symbols from the merged signal."""
        network, du, rus, das = das_setup
        environment = RadioEnvironment()
        ue_position = Position(18, 12, 0)
        modulator = QamModulator(16)
        transmitted = {}

        def ue_uplink(ru, position, time, port):
            pending = du._pending_ul.get(time.slot_key())
            if not pending:
                return None
            n_sc = ru.config.num_prb * SAMPLES_PER_PRB
            key = time
            if key not in transmitted:
                grid = np.zeros(n_sc, dtype=np.complex128)
                symbol_map = {}
                for allocation in pending:
                    start = allocation.start_prb * SAMPLES_PER_PRB
                    count = allocation.num_prb * SAMPLES_PER_PRB
                    data = rng.integers(0, 16, count)
                    symbol_map[allocation.prb_range] = data
                    grid[start : start + count] = modulator.modulate(data)
                transmitted[key] = (grid, symbol_map)
            grid, _ = transmitted[key]
            gain = environment.relative_gain(ue_position, position)
            return grid * gain * 0.5

        network.run(10, uplink_signal_fn=ue_uplink)
        assert du.uplink_receptions
        decoded_any = False
        for reception in du.uplink_receptions:
            if reception.time not in transmitted:
                continue
            _, symbol_map = transmitted[reception.time]
            iq = du.uplink_iq(reception.time, reception.ru_port)
            complex_grid = int16_to_iq(iq).reshape(-1)
            for (start, end), data in symbol_map.items():
                block = complex_grid[start * 12 : end * 12]
                # Normalize amplitude before hard-decision demapping.
                scale = np.sqrt(np.mean(np.abs(block) ** 2))
                assert scale > 0
                decoded = modulator.demodulate(block / scale)
                error_rate = np.mean(decoded != data)
                assert error_rate < 0.05
                decoded_any = True
        assert decoded_any

    def test_merge_combining_gain(self, das_setup, rng):
        """The merged signal is stronger than any single RU's copy."""
        network, du, rus, das = das_setup
        environment = RadioEnvironment()
        ue_position = Position(25, 10, 0)  # between the two RUs
        per_ru_power = {}

        def ue_uplink(ru, position, time, port):
            pending = du._pending_ul.get(time.slot_key())
            if not pending:
                return None
            n_sc = ru.config.num_prb * SAMPLES_PER_PRB
            grid = np.full(n_sc, 0.4 + 0.0j)
            gain = environment.relative_gain(ue_position, position)
            signal = grid * gain
            per_ru_power[ru.ru_id] = float(np.mean(np.abs(signal) ** 2))
            return signal

        network.run(6, uplink_signal_fn=ue_uplink)
        assert per_ru_power
        merged = [
            reception
            for reception in du.uplink_receptions
        ]
        assert merged
        iq = du.uplink_iq(merged[-1].time, merged[-1].ru_port)
        merged_power = float(np.mean(int16_to_iq(iq).astype(complex).real ** 2
                                     + int16_to_iq(iq).astype(complex).imag ** 2))
        assert merged_power > max(per_ru_power.values())

    def test_no_packet_loss_through_middlebox(self, das_setup):
        network, du, rus, das = das_setup
        reports = network.run(10)
        assert sum(r.undeliverable for r in reports) == 0
        # Every merged uplink symbol (data + PRACH) reached the DU once.
        delivered = du.counters.ul_packets + du.counters.prach_detections
        assert delivered == das.merged_uplink_symbols
