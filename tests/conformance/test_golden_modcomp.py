"""Golden modcomp wire fixtures, one capture per vendor profile.

``golden_modcomp.json`` pins the exact on-wire bytes of the same small
deterministic exchange :mod:`tests.conformance.test_golden_wire` uses,
renegotiated onto each vendor's modulation-compression parameters.  The
BFP captures in ``golden_wire.json`` are asserted untouched alongside:
the codec-dispatch refactor must not move a single BFP byte.

Regenerate after an *intentional* wire-format change with either::

    REPRO_UPDATE_GOLDENS=1 PYTHONPATH=src:. python -m pytest \
        tests/conformance/test_golden_modcomp.py
    PYTHONPATH=src:. python -m tests.conformance.test_golden_modcomp
"""

import hashlib
import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.conformance import WireValidator
from repro.conformance.violations import ViolationClass
from repro.fronthaul.cplane import Direction
from repro.fronthaul.packet import parse_packet
from repro.fronthaul.timing import SymbolTime
from repro.ran.stacks import negotiate_compression, profile_by_name
from tests.conformance.builders import cplane_packet
from tests.conformance.test_golden_wire import (
    _CARRIER,
    _SEEDS,
    DU_MAC,
    PROFILES,
    RU_MAC,
    _section,
    _uplane,
)
from tests.conformance import test_golden_wire as bfp_golden

FIXTURE_PATH = Path(__file__).parent / "golden_modcomp.json"


def build_capture(profile_name):
    """The golden-wire exchange with the cell negotiated onto modcomp."""
    profile = profile_by_name(profile_name)
    carrier = _CARRIER[profile_name]
    compression = negotiate_compression(profile, "modcomp")
    rng = np.random.default_rng(_SEEDS[profile_name])
    sched = min(carrier, profile.uplane_section_max_prbs)
    frames = []
    du_seq = ru_seq = 0
    for slot in range(2):
        time = SymbolTime(0, 0, slot, 0)
        frames.append(
            cplane_packet(
                0, sched, seq=du_seq, time=time, compression=compression,
                direction=Direction.DOWNLINK, src=DU_MAC, dst=RU_MAC,
                eaxc=bfp_golden.EAXC,
            ).pack()
        )
        du_seq += 1
        n1 = int(rng.integers(8, 33))
        gap = int(rng.integers(0, 9))
        n2 = int(rng.integers(8, 33))
        sections = [
            _section(1, 0, n1, rng, compression, amplitude=8000),
            _section(2, n1 + gap, n2, rng, compression, amplitude=8000),
        ]
        frames.append(
            _uplane(
                time, sections, Direction.DOWNLINK, DU_MAC, RU_MAC, du_seq
            ).pack()
        )
        du_seq += 1
        frames.append(
            cplane_packet(
                0, 32, seq=du_seq, time=time, compression=compression,
                direction=Direction.UPLINK, src=DU_MAC, dst=RU_MAC,
                eaxc=bfp_golden.EAXC,
            ).pack()
        )
        du_seq += 1
        ul_start = int(rng.integers(0, 9))
        ul_prbs = int(rng.integers(4, 17))
        ul_section = _section(
            1, ul_start, ul_prbs, rng, compression, amplitude=500
        )
        frames.append(
            _uplane(
                time, [ul_section], Direction.UPLINK, RU_MAC, DU_MAC, ru_seq
            ).pack()
        )
        ru_seq += 1
    return frames


def _capture_entry(profile_name):
    frames = build_capture(profile_name)
    return {
        "carrier_num_prb": _CARRIER[profile_name],
        "sha256": hashlib.sha256(b"".join(frames)).hexdigest(),
        "frames": [frame.hex() for frame in frames],
    }


def _write_fixture():
    FIXTURE_PATH.write_text(
        json.dumps(
            {name: _capture_entry(name) for name in PROFILES}, indent=1
        )
        + "\n"
    )


@pytest.fixture(scope="module")
def golden():
    if os.environ.get("REPRO_UPDATE_GOLDENS"):
        _write_fixture()
    return json.loads(FIXTURE_PATH.read_text())


class TestGoldenModCompFixtures:
    def test_fixture_covers_all_profiles(self, golden):
        assert set(golden) == set(PROFILES)
        for entry in golden.values():
            assert entry["frames"]

    @pytest.mark.parametrize("profile_name", PROFILES)
    def test_capture_bytes_are_stable(self, golden, profile_name):
        regenerated = _capture_entry(profile_name)
        pinned = golden[profile_name]
        assert regenerated["frames"] == pinned["frames"], (
            f"{profile_name} modcomp wire bytes drifted from the golden "
            "capture"
        )
        assert regenerated["sha256"] == pinned["sha256"]

    @pytest.mark.parametrize("profile_name", PROFILES)
    def test_validator_finds_zero_violations(self, golden, profile_name):
        profile = profile_by_name(profile_name)
        entry = golden[profile_name]
        validator = WireValidator(
            name=f"golden-modcomp-{profile_name}",
            profile=profile,
            carrier_num_prb=entry["carrier_num_prb"],
            allowed_compressions={negotiate_compression(profile, "modcomp")},
        )
        for frame_hex in entry["frames"]:
            validator.observe_bytes(bytes.fromhex(frame_hex), tap="golden")
        assert validator.report.frames_checked == len(entry["frames"])
        assert validator.report.ok, validator.report.format()

    @pytest.mark.parametrize("profile_name", PROFILES)
    def test_frames_parse_and_repack_byte_identical(
        self, golden, profile_name
    ):
        entry = golden[profile_name]
        for frame_hex in entry["frames"]:
            wire = bytes.fromhex(frame_hex)
            packet = parse_packet(
                wire, carrier_num_prb=entry["carrier_num_prb"]
            )
            assert packet.pack() == wire

    def test_modcomp_frames_violate_a_bfp_only_validator(self, golden):
        # The codec really is on the wire: a validator that only
        # negotiated BFP classifies every modcomp udCompHdr as a
        # wrong-codec payload.
        validator = WireValidator(
            name="cross-codec",
            profile=profile_by_name("srsRAN"),
            carrier_num_prb=106,
        )
        for frame_hex in golden["srsRAN"]["frames"]:
            validator.observe_bytes(bytes.fromhex(frame_hex))
        assert validator.report.count(ViolationClass.CODEC_MISMATCH) > 0
        assert validator.report.count(ViolationClass.BFP_WIDTH_MISMATCH) == 0


class TestBfpGoldensUnchanged:
    """The dispatch refactor must leave every BFP golden byte alone."""

    @pytest.mark.parametrize("profile_name", PROFILES)
    def test_bfp_capture_still_matches_pinned_fixture(self, profile_name):
        pinned = json.loads(bfp_golden.FIXTURE_PATH.read_text())
        regenerated = bfp_golden._capture_entry(profile_name)
        assert regenerated["frames"] == pinned[profile_name]["frames"]
        assert regenerated["sha256"] == pinned[profile_name]["sha256"]

    def test_codecs_produce_distinct_wire_bytes(self, golden):
        pinned = json.loads(bfp_golden.FIXTURE_PATH.read_text())
        for name in PROFILES:
            assert golden[name]["sha256"] != pinned[name]["sha256"]


if __name__ == "__main__":
    _write_fixture()
    print(f"wrote {FIXTURE_PATH}")
