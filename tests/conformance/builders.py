"""Shared packet builders for the conformance test suite."""

import numpy as np

from repro.fronthaul.compression import CompressionConfig
from repro.fronthaul.cplane import (
    CPlaneMessage,
    CPlaneSection,
    Direction,
    SectionType,
)
from repro.fronthaul.ecpri import EAxCId
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.packet import make_packet
from repro.fronthaul.timing import SymbolTime
from repro.fronthaul.uplane import UPlaneMessage, UPlaneSection
from repro.ran.stacks import profile_by_name

SRC = MacAddress.from_int(0x02_00_00_00_00_01)
DST = MacAddress.from_int(0x02_00_00_00_00_02)
EAXC = EAxCId.from_int(0x0101)

SRS_COMPRESSION = profile_by_name("srsRAN").compression


def cplane_packet(
    start_prb=0,
    num_prb=10,
    seq=0,
    time=None,
    compression=None,
    direction=Direction.DOWNLINK,
    src=SRC,
    dst=DST,
    eaxc=EAXC,
):
    message = CPlaneMessage(
        direction=direction,
        time=time if time is not None else SymbolTime(0, 0, 0, 0),
        section_type=SectionType.DATA,
        compression=compression or SRS_COMPRESSION,
    )
    message.sections = [
        CPlaneSection(section_id=1, start_prb=start_prb, num_prb=num_prb)
    ]
    return make_packet(src=src, dst=dst, message=message, seq_id=seq, eaxc=eaxc)


def uplane_packet(
    start_prb=0,
    num_prb=4,
    seq=0,
    time=None,
    compression=None,
    payload=None,
    amplitude=7,
    direction=Direction.DOWNLINK,
    src=SRC,
    dst=DST,
    eaxc=EAXC,
):
    compression = compression or SRS_COMPRESSION
    if payload is None:
        section = UPlaneSection.from_samples(
            section_id=1,
            start_prb=start_prb,
            samples=np.full((num_prb, 24), amplitude, dtype=np.int16),
            compression=compression,
        )
    else:
        section = UPlaneSection(
            section_id=1,
            start_prb=start_prb,
            num_prb=num_prb,
            payload=payload,
            compression=compression,
        )
    message = UPlaneMessage(
        direction=direction,
        time=time if time is not None else SymbolTime(0, 0, 0, 0),
        sections=[section],
    )
    return make_packet(src=src, dst=dst, message=message, seq_id=seq, eaxc=eaxc)
