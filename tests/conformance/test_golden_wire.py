"""Golden wire-byte fixtures, one capture per vendor profile.

``golden_wire.json`` pins the exact on-wire bytes of a small deterministic
C/U-plane exchange for each of the three vendor stacks.  The tests assert
that today's packers still emit those bytes (wire-format stability across
refactors) and that the :class:`WireValidator` finds each capture fully
conformant.

Regenerate after an *intentional* wire-format change with::

    PYTHONPATH=src:. python -m tests.conformance.test_golden_wire
"""

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.conformance import WireValidator
from repro.conformance.violations import ViolationClass
from repro.fronthaul.cplane import Direction
from repro.fronthaul.ecpri import EAxCId
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.packet import make_packet, parse_packet
from repro.fronthaul.timing import SymbolTime
from repro.fronthaul.uplane import UPlaneMessage, UPlaneSection
from repro.ran.stacks import profile_by_name
from tests.conformance.builders import cplane_packet

FIXTURE_PATH = Path(__file__).parent / "golden_wire.json"

PROFILES = ("srsRAN", "CapGemini", "Radisys")

_SEEDS = {"srsRAN": 101, "CapGemini": 202, "Radisys": 303}
_CARRIER = {"srsRAN": 106, "CapGemini": 106, "Radisys": 273}

DU_MAC = MacAddress.from_int(0x02_00_00_00_00_01)
RU_MAC = MacAddress.from_int(0x02_00_00_00_00_02)
EAXC = EAxCId.from_int(0x0101)


def _uplane(time, sections, direction, src, dst, seq):
    message = UPlaneMessage(direction=direction, time=time, sections=sections)
    return make_packet(src=src, dst=dst, message=message, seq_id=seq, eaxc=EAXC)


def _section(section_id, start_prb, num_prb, rng, compression, amplitude):
    samples = rng.integers(
        -amplitude, amplitude, size=(num_prb, 24)
    ).astype(np.int16)
    return UPlaneSection.from_samples(
        section_id=section_id,
        start_prb=start_prb,
        samples=samples,
        compression=compression,
    )


def build_capture(profile_name):
    """Deterministic two-slot DL+UL exchange for one vendor profile.

    The DU stream (DU -> RU: DL C-plane, DL U-plane, UL C-plane) and the
    RU stream (RU -> DU: UL U-plane) each keep their own 8-bit sequence
    counter, exactly as the live endpoints do.
    """
    profile = profile_by_name(profile_name)
    carrier = _CARRIER[profile_name]
    compression = profile.compression
    rng = np.random.default_rng(_SEEDS[profile_name])
    sched = min(carrier, profile.uplane_section_max_prbs)
    frames = []
    du_seq = ru_seq = 0
    for slot in range(2):
        time = SymbolTime(0, 0, slot, 0)
        frames.append(
            cplane_packet(
                0, sched, seq=du_seq, time=time, compression=compression,
                direction=Direction.DOWNLINK, src=DU_MAC, dst=RU_MAC,
                eaxc=EAXC,
            ).pack()
        )
        du_seq += 1
        n1 = int(rng.integers(8, 33))
        gap = int(rng.integers(0, 9))
        n2 = int(rng.integers(8, 33))
        sections = [
            _section(1, 0, n1, rng, compression, amplitude=8000),
            _section(2, n1 + gap, n2, rng, compression, amplitude=8000),
        ]
        frames.append(
            _uplane(
                time, sections, Direction.DOWNLINK, DU_MAC, RU_MAC, du_seq
            ).pack()
        )
        du_seq += 1
        frames.append(
            cplane_packet(
                0, 32, seq=du_seq, time=time, compression=compression,
                direction=Direction.UPLINK, src=DU_MAC, dst=RU_MAC,
                eaxc=EAXC,
            ).pack()
        )
        du_seq += 1
        ul_start = int(rng.integers(0, 9))
        ul_prbs = int(rng.integers(4, 17))
        ul_section = _section(
            1, ul_start, ul_prbs, rng, compression, amplitude=500
        )
        frames.append(
            _uplane(
                time, [ul_section], Direction.UPLINK, RU_MAC, DU_MAC, ru_seq
            ).pack()
        )
        ru_seq += 1
    return frames


def _capture_entry(profile_name):
    frames = build_capture(profile_name)
    return {
        "carrier_num_prb": _CARRIER[profile_name],
        "sha256": hashlib.sha256(b"".join(frames)).hexdigest(),
        "frames": [frame.hex() for frame in frames],
    }


@pytest.fixture(scope="module")
def golden():
    return json.loads(FIXTURE_PATH.read_text())


class TestGoldenWireFixtures:
    def test_fixture_covers_all_profiles(self, golden):
        assert set(golden) == set(PROFILES)
        for entry in golden.values():
            assert entry["frames"]

    @pytest.mark.parametrize("profile_name", PROFILES)
    def test_capture_bytes_are_stable(self, golden, profile_name):
        regenerated = _capture_entry(profile_name)
        pinned = golden[profile_name]
        assert regenerated["frames"] == pinned["frames"], (
            f"{profile_name} wire bytes drifted from the golden capture"
        )
        assert regenerated["sha256"] == pinned["sha256"]

    @pytest.mark.parametrize("profile_name", PROFILES)
    def test_validator_finds_zero_violations(self, golden, profile_name):
        entry = golden[profile_name]
        validator = WireValidator(
            name=f"golden-{profile_name}",
            profile=profile_by_name(profile_name),
            carrier_num_prb=entry["carrier_num_prb"],
        )
        for frame_hex in entry["frames"]:
            validator.observe_bytes(bytes.fromhex(frame_hex), tap="golden")
        assert validator.report.frames_checked == len(entry["frames"])
        assert validator.report.ok, validator.report.format()

    @pytest.mark.parametrize("profile_name", PROFILES)
    def test_frames_parse_and_repack_byte_identical(
        self, golden, profile_name
    ):
        entry = golden[profile_name]
        for frame_hex in entry["frames"]:
            wire = bytes.fromhex(frame_hex)
            packet = parse_packet(
                wire, carrier_num_prb=entry["carrier_num_prb"]
            )
            assert packet.pack() == wire

    def test_cross_profile_validation_flags_width(self, golden):
        # The captures really do carry per-vendor compression: srsRAN's
        # width-9 frames violate a Radisys (width-14) validator.
        validator = WireValidator(
            name="cross",
            profile=profile_by_name("Radisys"),
            carrier_num_prb=273,
        )
        for frame_hex in golden["srsRAN"]["frames"]:
            validator.observe_bytes(bytes.fromhex(frame_hex))
        assert (
            validator.report.count(ViolationClass.BFP_WIDTH_MISMATCH) > 0
        )


if __name__ == "__main__":
    FIXTURE_PATH.write_text(
        json.dumps(
            {name: _capture_entry(name) for name in PROFILES}, indent=1
        )
        + "\n"
    )
    print(f"wrote {FIXTURE_PATH}")
