"""WireValidator: one regression test per violation class, plus report
semantics and fault-layer integration."""

from repro.conformance import (
    ConformanceReport,
    Violation,
    ViolationClass,
    WireValidator,
)
from repro.faults import FaultConfig, FaultInjector
from repro.fronthaul.compression import BFP_COMP_METH, CompressionConfig
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.timing import SymbolTime
from repro.obs import Observability
from repro.ran.stacks import profile_by_name
from tests.conformance.builders import cplane_packet, uplane_packet


def fresh_validator(**kwargs):
    kwargs.setdefault("profile", profile_by_name("srsRAN"))
    kwargs.setdefault("carrier_num_prb", 106)
    return WireValidator(name="test", **kwargs)


def only_class(validator, expected):
    """Assert exactly one violation class fired, and return its count."""
    counts = dict(validator.report.counts)
    assert set(counts) == {expected.value}, counts
    return counts[expected.value]


class TestViolationClasses:
    def test_clean_pair_has_no_violations(self):
        validator = fresh_validator()
        validator.observe(cplane_packet(0, 20, seq=0))
        validator.observe(uplane_packet(0, 4, seq=1))
        assert validator.report.ok
        assert validator.report.frames_checked == 2

    def test_bad_ecpri_length_truncated_frame(self):
        validator = fresh_validator()
        data = uplane_packet(0, 4).pack()
        found = validator.observe_bytes(data[:-5], tap="t")
        assert [v.violation_class for v in found] == [
            ViolationClass.BAD_ECPRI_LENGTH
        ]
        assert only_class(validator, ViolationClass.BAD_ECPRI_LENGTH) == 1

    def test_bad_ecpri_length_inflated_size_field(self):
        validator = fresh_validator()
        data = bytearray(cplane_packet(0, 10).pack())
        # payloadSize is bytes 16..17 (14 eth + 2 into the eCPRI header).
        data[16:18] = (int.from_bytes(data[16:18], "big") + 3).to_bytes(
            2, "big"
        )
        found = validator.observe_bytes(bytes(data))
        assert found[0].violation_class is ViolationClass.BAD_ECPRI_LENGTH

    def test_malformed_frame_bad_version(self):
        validator = fresh_validator()
        data = bytearray(cplane_packet(0, 10).pack())
        data[14] = (data[14] & 0x0F) | (0x2 << 4)
        validator.observe_bytes(bytes(data))
        assert only_class(validator, ViolationClass.MALFORMED_FRAME) == 1

    def test_section_structure_carrier_overrun(self):
        validator = fresh_validator()
        validator.observe(cplane_packet(100, 20))
        assert only_class(validator, ViolationClass.SECTION_STRUCTURE) == 1

    def test_section_structure_vendor_prb_cap(self):
        # Radisys caps U-plane sections at 136 PRBs; 150 violates it even
        # inside a 273-PRB carrier.
        profile = profile_by_name("Radisys")
        validator = WireValidator(
            name="test", profile=profile, carrier_num_prb=273
        )
        validator.observe(
            cplane_packet(0, 150, seq=0, compression=profile.compression)
        )
        validator.observe(
            uplane_packet(
                0, 150, seq=1, compression=profile.compression, amplitude=3
            )
        )
        assert only_class(validator, ViolationClass.SECTION_STRUCTURE) == 1

    def test_section_structure_sibling_overlap(self):
        validator = fresh_validator()
        packet = cplane_packet(0, 10)
        second = cplane_packet(5, 10).message.sections[0]
        packet.message.sections.append(second)
        validator.observe(packet)
        assert only_class(validator, ViolationClass.SECTION_STRUCTURE) == 1

    def test_prb_section_mismatch_unscheduled(self):
        validator = fresh_validator()
        validator.observe(cplane_packet(0, 20, seq=0))
        validator.observe(uplane_packet(30, 10, seq=1))
        assert only_class(validator, ViolationClass.PRB_SECTION_MISMATCH) == 1

    def test_prb_section_mismatch_no_cplane_at_all(self):
        validator = fresh_validator()
        validator.observe(uplane_packet(0, 4, seq=0))
        assert only_class(validator, ViolationClass.PRB_SECTION_MISMATCH) == 1

    def test_bfp_width_mismatch_against_profile(self):
        validator = fresh_validator()
        wide = CompressionConfig(iq_width=14, comp_meth=BFP_COMP_METH)
        validator.observe(cplane_packet(0, 4, seq=0))
        validator.observe(uplane_packet(0, 4, seq=1, compression=wide))
        assert only_class(validator, ViolationClass.BFP_WIDTH_MISMATCH) == 1

    def test_illegal_bfp_exponent_raw_byte(self):
        validator = fresh_validator()
        good = uplane_packet(0, 2, seq=1).message.sections[0].payload_bytes()
        payload = bytearray(good)
        payload[0] = 0x0F  # legal max for width 9 is 16 - 9 = 7
        validator.observe(cplane_packet(0, 2, seq=0))
        validator.observe(uplane_packet(0, 2, seq=1, payload=bytes(payload)))
        assert only_class(validator, ViolationClass.ILLEGAL_BFP_EXPONENT) == 1

    def test_illegal_bfp_exponent_reserved_nibble(self):
        # The upper nibble of the exponent byte is reserved-zero on the
        # wire; a set bit there is corruption even if the low nibble is
        # a legal exponent.
        validator = fresh_validator()
        good = uplane_packet(0, 2, seq=1).message.sections[0].payload_bytes()
        payload = bytearray(good)
        payload[0] |= 0x50
        validator.observe(cplane_packet(0, 2, seq=0))
        validator.observe(uplane_packet(0, 2, seq=1, payload=bytes(payload)))
        assert only_class(validator, ViolationClass.ILLEGAL_BFP_EXPONENT) == 1

    def test_seq_gap(self):
        validator = fresh_validator()
        validator.observe(cplane_packet(0, 10, seq=0))
        found = validator.observe(cplane_packet(0, 10, seq=3))
        assert only_class(validator, ViolationClass.SEQ_GAP) == 1
        assert "2 sequence number(s) skipped" in found[0].detail

    def test_seq_gap_across_wrap(self):
        validator = fresh_validator()
        validator.observe(cplane_packet(0, 10, seq=254))
        validator.observe(cplane_packet(0, 10, seq=1))  # lost 255 and 0
        assert only_class(validator, ViolationClass.SEQ_GAP) == 1

    def test_seq_wrap_clean_is_not_a_gap(self):
        validator = fresh_validator()
        validator.observe(cplane_packet(0, 10, seq=255))
        validator.observe(cplane_packet(0, 10, seq=0))
        assert validator.report.ok

    def test_seq_dup(self):
        validator = fresh_validator()
        packet = cplane_packet(0, 10, seq=5)
        validator.observe(packet)
        validator.observe(packet)
        assert only_class(validator, ViolationClass.SEQ_DUP) == 1

    def test_replication_to_distinct_dsts_is_not_a_dup(self):
        # A DAS replicating one frame to two RUs reuses src/eAxC/seq on
        # both copies; distinct destinations are distinct streams.
        validator = fresh_validator()
        validator.observe(cplane_packet(0, 10, seq=0))
        other = cplane_packet(
            0, 10, seq=0, dst=MacAddress.from_int(0x02_00_00_00_00_99)
        )
        validator.observe(other)
        assert validator.report.ok

    def test_stale_slot(self):
        validator = fresh_validator()
        validator.observe(
            cplane_packet(0, 10, seq=0, time=SymbolTime(2, 0, 0, 0))
        )
        validator.observe(
            cplane_packet(0, 10, seq=1, time=SymbolTime(0, 0, 0, 0))
        )
        assert only_class(validator, ViolationClass.STALE_SLOT) == 1

    def test_frame_epoch_wrap_is_not_stale(self):
        validator = fresh_validator()
        validator.observe(
            cplane_packet(0, 10, seq=0, time=SymbolTime(255, 9, 1, 0))
        )
        validator.observe(
            cplane_packet(0, 10, seq=1, time=SymbolTime(0, 0, 0, 0))
        )
        assert validator.report.ok


class TestFaultIntegration:
    """Injected wire corruption classifies as the right violation class."""

    def test_injector_truncation_classifies(self, rng):
        injector = FaultInjector(
            FaultConfig(truncate_rate=1.0), seed=9, carrier_num_prb=106
        )
        validator = fresh_validator()
        data = uplane_packet(0, 8).pack()
        flagged = 0
        for cut in range(15, len(data) - 1):
            found = validator.observe_bytes(data[:cut])
            assert len(found) == 1
            assert found[0].violation_class in (
                ViolationClass.BAD_ECPRI_LENGTH,
                ViolationClass.MALFORMED_FRAME,
            )
            flagged += 1
        assert flagged == validator.report.total_violations
        # And the injector itself can never deliver a truncated U-plane
        # frame: the strict parser kills every cut (see test_errors.py).
        assert injector._truncate(uplane_packet(0, 8)) is None

    def test_injector_bitflip_classifies_or_passes(self):
        injector = FaultInjector(
            FaultConfig(corrupt_rate=1.0, corrupt_bits=4),
            seed=31,
            carrier_num_prb=106,
        )
        validator = fresh_validator()
        survivors = 0
        for seq in range(40):
            damaged = injector._corrupt(uplane_packet(0, 4, seq=seq))
            if damaged is None:
                continue  # killed on the wire before any host saw it
            survivors += 1
            validator.observe(damaged)
        assert survivors > 0
        # Surviving reparses may still violate (flipped exponent bits,
        # shifted PRB ranges...) but every record must carry a class from
        # the taxonomy and the counters must reconcile.
        assert validator.report.total_violations == sum(
            validator.report.counts.values()
        )
        for record in validator.report.records:
            assert isinstance(record.violation_class, ViolationClass)


class TestReport:
    def test_round_trip_dict(self):
        validator = fresh_validator()
        validator.observe(cplane_packet(100, 20))
        report = validator.report
        clone = ConformanceReport.from_dict(report.to_dict())
        assert clone.frames_checked == report.frames_checked
        assert clone.counts == report.counts
        assert clone.records == report.records

    def test_merge_accumulates(self):
        first = ConformanceReport()
        second = ConformanceReport()
        first.frames_checked = 3
        second.frames_checked = 4
        violation = Violation(ViolationClass.SEQ_GAP, "x")
        first.record(violation)
        second.record(violation)
        second.record(Violation(ViolationClass.SEQ_DUP, "y"))
        first.merge(second)
        assert first.frames_checked == 7
        assert first.count(ViolationClass.SEQ_GAP) == 2
        assert first.count(ViolationClass.SEQ_DUP) == 1
        assert len(first.records) == 3

    def test_record_cap_keeps_counts_exact(self):
        report = ConformanceReport(max_records=2)
        for index in range(5):
            report.record(Violation(ViolationClass.SEQ_GAP, str(index)))
        assert len(report.records) == 2
        assert report.count(ViolationClass.SEQ_GAP) == 5

    def test_format_mentions_classes(self):
        validator = fresh_validator()
        validator.observe(cplane_packet(100, 20))
        text = validator.report.format()
        assert "section_structure" in text
        assert "violations: 1" in text


class TestObsExport:
    def test_counters_exported_when_enabled(self):
        obs = Observability(enabled=True)
        validator = fresh_validator(obs=obs)
        validator.observe(cplane_packet(0, 10, seq=0))
        validator.observe(cplane_packet(0, 10, seq=2))
        snap = obs.registry.snapshot()
        frames = snap["conformance_frames_total"]["series"]
        assert sum(frames.values()) == 2
        violations = snap["conformance_violations_total"]["series"]
        assert violations == {"test,seq_gap": 1}

    def test_disabled_obs_exports_nothing(self):
        validator = fresh_validator()
        validator.observe(cplane_packet(0, 10, seq=0))
        assert not validator.obs.enabled
