"""Differential tests: vectorized hot paths vs scalar references.

Every vectorized fast path in the fronthaul (BFP compress/decompress,
the batched DAS merge, the zero-copy U-plane parser) is pinned to a
deliberately naive pure-Python reference (:mod:`repro.conformance.reference`)
by asserting **byte-identical** output over hundreds of seeded cases and
Hypothesis-generated inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.conformance import generators as gen
from repro.conformance.reference import (
    scalar_bits_needed,
    scalar_compress,
    scalar_decompress,
    scalar_exponent,
    scalar_merge,
    scalar_modcomp_scaler,
    scalar_pack_uplane,
    scalar_parse_uplane,
)
from repro.fronthaul.compression import (
    BFP_COMP_METH,
    MOD_COMP_METH,
    NO_COMP_METH,
    BfpCompressor,
    CompressionConfig,
    codec_for,
    merge_payloads,
)
from repro.fronthaul.modcomp import ModCompressor
from repro.fronthaul.cplane import CPlaneMessage
from repro.fronthaul.packet import parse_packet
from repro.fronthaul.uplane import UPlaneMessage
from tests.conformance.builders import uplane_packet

#: Seeded sweep size per codec — the acceptance floor is 200.
N_CASES = 220

#: (iq_width, comp_meth) grid cycled through the seeded BFP sweeps.
_CONFIGS = [
    (9, BFP_COMP_METH),
    (14, BFP_COMP_METH),
    (8, BFP_COMP_METH),
    (12, BFP_COMP_METH),
    (16, NO_COMP_METH),
]

#: The modcomp grid: the three vendor widths plus the extremes.
_MODCOMP_CONFIGS = [(3,), (4,), (6,), (1,), (14,), (8,)]


def _samples_for(index: int, seed_base: int) -> np.ndarray:
    rng = np.random.default_rng(seed_base + index)
    n_prbs = int(rng.integers(1, 17))
    amplitude = int(rng.choice([1, 15, 300, 4000, 32767]))
    samples = rng.integers(
        -amplitude - 1, amplitude + 1, size=(n_prbs, 24), dtype=np.int64
    )
    return np.clip(samples, -32768, 32767).astype(np.int16)


def _case(index: int):
    """Deterministic BFP case ``index``: (config, samples)."""
    width, meth = _CONFIGS[index % len(_CONFIGS)]
    return (
        CompressionConfig(iq_width=width, comp_meth=meth),
        _samples_for(index, 1000),
    )


def _modcomp_case(index: int):
    """Deterministic modcomp case ``index``: (config, samples)."""
    (width,) = _MODCOMP_CONFIGS[index % len(_MODCOMP_CONFIGS)]
    return (
        CompressionConfig(iq_width=width, comp_meth=MOD_COMP_METH),
        _samples_for(index, 2000),
    )


class TestBfpCodecDifferential:
    def test_compress_matches_scalar_reference(self):
        for index in range(N_CASES):
            config, samples = _case(index)
            vectorized = BfpCompressor(config).compress(samples)
            reference = scalar_compress(
                samples.tolist(), config.iq_width, config.comp_meth
            )
            assert vectorized == reference, f"case {index}: {config}"

    def test_decompress_matches_scalar_reference(self):
        for index in range(N_CASES):
            config, samples = _case(index)
            payload = BfpCompressor(config).compress(samples)
            vectorized = BfpCompressor(config).decompress(
                payload, len(samples)
            )
            reference = scalar_decompress(
                payload, len(samples), config.iq_width, config.comp_meth
            )
            assert vectorized.tolist() == reference, f"case {index}"

    def test_merge_matches_scalar_reference(self):
        for index in range(N_CASES):
            config, samples = _case(index)
            rng = np.random.default_rng(5000 + index)
            n_ops = int(rng.integers(2, 5))
            operands = []
            for op in range(n_ops):
                shifted = np.clip(
                    samples.astype(np.int64)
                    + rng.integers(-50, 51, size=samples.shape),
                    -32768,
                    32767,
                ).astype(np.int16)
                operands.append(BfpCompressor(config).compress(shifted))
            vectorized = merge_payloads(operands, len(samples), config)
            reference = scalar_merge(
                operands, len(samples), config.iq_width, config.comp_meth
            )
            assert vectorized == reference, f"case {index}: {n_ops} operands"

    def test_exponents_match_scalar_reference(self):
        for index in range(N_CASES):
            config, samples = _case(index)
            if config.comp_meth != BFP_COMP_METH:
                continue
            vectorized = BfpCompressor(config).exponents_for(samples)
            reference = [
                scalar_exponent(row, config.iq_width)
                for row in samples.tolist()
            ]
            assert vectorized.tolist() == reference, f"case {index}"

    def test_bits_needed_agrees_at_boundaries(self):
        values = [0, 1, -1, 2, -2, 255, 256, -255, -256, -257, 32767, -32768]
        for value in values:
            vectorized = BfpCompressor(
                CompressionConfig()
            ).exponents_for(np.full((1, 24), value, dtype=np.int16))
            assert int(vectorized[0]) == max(
                scalar_bits_needed(value) - 9, 0
            ), value


class TestModCompCodecDifferential:
    """The vectorized second codec against the scalar reference."""

    def test_compress_matches_scalar_reference(self):
        for index in range(N_CASES):
            config, samples = _modcomp_case(index)
            vectorized = ModCompressor(config).compress(samples)
            reference = scalar_compress(
                samples.tolist(), config.iq_width, config.comp_meth
            )
            assert vectorized == reference, f"case {index}: {config}"

    def test_decompress_matches_scalar_reference(self):
        for index in range(N_CASES):
            config, samples = _modcomp_case(index)
            payload = ModCompressor(config).compress(samples)
            vectorized = ModCompressor(config).decompress(
                payload, len(samples)
            )
            reference = scalar_decompress(
                payload, len(samples), config.iq_width, config.comp_meth
            )
            assert vectorized.tolist() == reference, f"case {index}"

    def test_merge_matches_scalar_reference(self):
        for index in range(N_CASES):
            config, samples = _modcomp_case(index)
            rng = np.random.default_rng(6000 + index)
            n_ops = int(rng.integers(2, 5))
            operands = []
            for op in range(n_ops):
                shifted = np.clip(
                    samples.astype(np.int64)
                    + rng.integers(-50, 51, size=samples.shape),
                    -32768,
                    32767,
                ).astype(np.int16)
                operands.append(ModCompressor(config).compress(shifted))
            vectorized = merge_payloads(operands, len(samples), config)
            reference = scalar_merge(
                operands, len(samples), config.iq_width, config.comp_meth
            )
            assert vectorized == reference, f"case {index}: {n_ops} operands"

    def test_scalers_match_scalar_reference(self):
        for index in range(N_CASES):
            config, samples = _modcomp_case(index)
            vectorized = ModCompressor(config).scalers_for(samples)
            reference = [
                scalar_modcomp_scaler(row, config.iq_width)
                for row in samples.tolist()
            ]
            assert vectorized.tolist() == reference, f"case {index}"


class TestUPlaneParserDifferential:
    def test_parse_matches_scalar_reference(self):
        for index in range(N_CASES):
            config, samples = _case(index)
            payload = BfpCompressor(config).compress(samples)
            packet = uplane_packet(
                start_prb=index % 64,
                num_prb=len(samples),
                compression=config,
                payload=payload,
                seq=index % 256,
            )
            wire = packet.message.pack()
            parsed = scalar_parse_uplane(wire, carrier_num_prb=106)
            vector = UPlaneMessage.unpack(wire, carrier_num_prb=106)
            assert parsed["frame"] == vector.time.frame
            assert parsed["direction"] == int(vector.direction)
            assert len(parsed["sections"]) == len(vector.sections)
            for ref, vec in zip(parsed["sections"], vector.sections):
                assert ref["start_prb"] == vec.start_prb
                assert ref["num_prb"] == vec.num_prb
                assert bytes(ref["payload"]) == vec.payload_bytes()
            # And the scalar re-serializer closes the loop byte-exactly.
            assert scalar_pack_uplane(parsed) == wire

    @given(message=gen.uplane_messages())
    @settings(max_examples=60, deadline=None)
    def test_parse_matches_scalar_on_generated_messages(self, message):
        wire = message.pack()
        parsed = scalar_parse_uplane(wire, carrier_num_prb=1024)
        assert scalar_pack_uplane(parsed) == wire
        vector = UPlaneMessage.unpack(wire, carrier_num_prb=1024)
        assert [s["payload"] for s in parsed["sections"]] == [
            s.payload_bytes() for s in vector.sections
        ]


class TestHypothesisRoundTrips:
    """pack -> unpack -> pack is byte-identical for every codec."""

    @given(samples=gen.iq_samples(), config=gen.compression_configs())
    @settings(max_examples=80, deadline=None)
    def test_codec_round_trip_is_stable(self, samples, config):
        compressor = codec_for(config)
        payload = compressor.compress(samples)
        decoded = compressor.decompress(payload, len(samples))
        # Lossy once, stable forever: recompressing the decode must
        # reproduce the wire bytes exactly.
        assert compressor.compress(decoded) == payload
        assert scalar_compress(
            decoded.tolist(), config.iq_width, config.comp_meth
        ) == payload

    @given(samples=gen.iq_samples(), config=gen.modcomp_configs())
    @settings(max_examples=80, deadline=None)
    def test_modcomp_codec_round_trip_is_stable(self, samples, config):
        compressor = ModCompressor(config)
        payload = compressor.compress(samples)
        decoded = compressor.decompress(payload, len(samples))
        assert compressor.compress(decoded) == payload
        assert scalar_compress(
            decoded.tolist(), config.iq_width, config.comp_meth
        ) == payload

    @given(message=gen.uplane_messages())
    @settings(max_examples=60, deadline=None)
    def test_uplane_round_trip(self, message):
        wire = message.pack()
        again = UPlaneMessage.unpack(wire, carrier_num_prb=1024)
        assert again.pack() == wire

    @given(message=gen.cplane_messages())
    @settings(max_examples=60, deadline=None)
    def test_cplane_round_trip(self, message):
        wire = message.pack()
        again = CPlaneMessage.unpack(wire)
        assert again.pack() == wire

    @given(packet=gen.fronthaul_packets())
    @settings(max_examples=60, deadline=None)
    def test_full_packet_round_trip(self, packet):
        wire = packet.pack()
        again = parse_packet(wire, carrier_num_prb=1024)
        assert again.pack() == wire
        assert again.eth.src == packet.eth.src
        assert again.ecpri.seq_id == packet.ecpri.seq_id
        assert again.eaxc.to_int() == packet.eaxc.to_int()


class TestScalarReferenceSelfChecks:
    """The reference must fail loudly on the inputs the codec rejects."""

    def test_reference_rejects_oversized_exponent(self):
        # Unreachable from int16 sources (16 - width <= 15 always), so it
        # takes a deliberately wider Python int to trip the wire bound.
        with pytest.raises(ValueError):
            scalar_compress([[1 << 20] * 24], 2)

    def test_reference_rejects_wrong_row_width(self):
        with pytest.raises(ValueError):
            scalar_compress([[0] * 23], 9)

    def test_reference_rejects_truncated_payload(self):
        with pytest.raises(ValueError):
            scalar_decompress(b"\x00" * 10, 2, 9)
