"""Tap attachment points: chain stage, switch port, network ingress, and
the sharded scale path with per-shard report merging."""

from repro.conformance import ConformanceTap, WireValidator, tap_switch_port
from repro.conformance.violations import ViolationClass
from repro.core.chain import FronthaulSwitch, PortRole
from repro.fronthaul.cplane import Direction
from repro.net.switch import EthernetSwitch, PortSpec
from repro.ran.cell import CellConfig
from repro.ran.du import DistributedUnit
from repro.ran.ru import RadioUnit, RuConfig
from repro.ran.stacks import profile_by_name
from repro.ran.traffic import ConstantBitrateFlow
from repro.scale.spec import (
    CellSpec,
    FlowSpec,
    ObsSpec,
    RuSpec,
    ScenarioSpec,
    StageSpec,
    UeSpec,
)
from repro.scale.runner import run_scenario
from repro.sim.network_sim import FronthaulNetwork
from tests.conformance.builders import DST, SRC, cplane_packet


def _validator(profile_name="srsRAN", **kwargs):
    profile = profile_by_name(profile_name)
    kwargs.setdefault("carrier_num_prb", 106)
    return WireValidator(name="tap-test", profile=profile, **kwargs)


def _live_network(validator=None, middleboxes=(), profile_name="srsRAN"):
    profile = profile_by_name(profile_name)
    cell = CellConfig(
        pci=1,
        bandwidth_hz=40_000_000,
        n_antennas=2,
        max_dl_layers=2,
        compression=profile.compression,
    )
    du = DistributedUnit(
        du_id=1, cell=cell, profile=profile, symbols_per_slot=1, seed=5
    )
    du.scheduler.add_ue("ue", dl_layers=2)
    du.scheduler.update_ue_quality("ue", dl_aggregate_se=10.0, ul_se=3.0)
    du.attach_flow("ue", ConstantBitrateFlow(80, "dl"), Direction.DOWNLINK)
    du.attach_flow("ue", ConstantBitrateFlow(10, "ul"), Direction.UPLINK)
    ru = RadioUnit(
        ru_id=1,
        config=RuConfig(
            num_prb=cell.num_prb,
            n_antennas=2,
            compression=profile.compression,
        ),
        du_mac=du.mac,
        seed=5,
    )
    network = FronthaulNetwork(
        middleboxes=list(middleboxes), validator=validator
    )
    network.add_du(du)
    network.add_ru(ru)
    return network


class TestChainTap:
    def test_pass_through_preserves_traffic(self):
        validator = _validator()
        tapped = _live_network(middleboxes=[ConformanceTap(validator)])
        baseline = _live_network()
        tapped_reports = tapped.run(8)
        baseline_reports = baseline.run(8)
        assert validator.report.frames_checked > 0
        assert validator.report.ok, validator.report.format()
        # An observer tap never changes what the endpoints see.
        assert [
            (r.dl_packets, r.ul_packets, r.undeliverable)
            for r in tapped_reports
        ] == [
            (r.dl_packets, r.ul_packets, r.undeliverable)
            for r in baseline_reports
        ]

    def test_tap_counts_both_planes(self):
        validator = _validator()
        network = _live_network(middleboxes=[ConformanceTap(validator)])
        network.run(6)
        box = network.middleboxes[0]
        assert box.stats.rx_packets == validator.report.frames_checked


class TestSwitchPortTap:
    def _switch(self, deliver):
        switch = FronthaulSwitch(name="tap-fabric")
        switch.attach("du0", PortRole.DU, [DST], deliver)
        switch.attach("ru0", PortRole.RU, [SRC], lambda packet: None)
        return switch

    def test_wraps_deliver_and_validates(self):
        seen = []
        switch = self._switch(seen.append)
        validator = _validator()
        tap_switch_port(switch, "du0", validator)
        switch.inject(cplane_packet(0, 10, seq=0, src=SRC, dst=DST), "ru0")
        switch.inject(cplane_packet(0, 10, seq=2, src=SRC, dst=DST), "ru0")
        assert len(seen) == 2  # the tap observes, never drops
        assert validator.report.frames_checked == 2
        assert validator.report.count(ViolationClass.SEQ_GAP) == 1
        assert validator.report.records[0].tap == "tap-fabric:du0"

    def test_wire_level_tap_exercises_strict_parser(self):
        seen = []
        switch = self._switch(seen.append)
        validator = _validator()
        tap_switch_port(switch, "du0", validator, wire_level=True)
        switch.inject(cplane_packet(0, 10, seq=0), "ru0")
        assert len(seen) == 1
        assert validator.report.frames_checked == 1
        assert validator.report.ok

    def test_ethernet_switch_port_accessor(self):
        seen = []
        switch = EthernetSwitch(name="tor")
        switch.attach(PortSpec("du0"), PortRole.DU, [DST], seen.append)
        switch.attach(PortSpec("ru0"), PortRole.RU, [SRC], lambda p: None)
        validator = _validator()
        tap_switch_port(switch, "du0", validator)
        switch.inject(cplane_packet(0, 10, seq=0), "ru0")
        assert seen and validator.report.frames_checked == 1


class TestNetworkIngressTap:
    def test_clean_run_is_clean_at_both_ingresses(self):
        validator = _validator()
        network = _live_network(validator=validator)
        network.run(10)
        assert validator.report.frames_checked > 0
        assert validator.report.ok, validator.report.format()
        taps = {record.tap for record in validator.report.records}
        assert not taps  # no violations -> no records


def _scenario(wire=None, slots=8):
    def cell(name, group):
        return CellSpec(
            name=name,
            pci=1,
            profile="srsRAN",
            group=group,
            wire=wire if name == "cell0" else None,
            rus=(RuSpec(name=f"{name}-ru0"), RuSpec(name=f"{name}-ru1")),
            ues=(
                UeSpec(
                    ue_id=f"{name}-ue0",
                    flows=(FlowSpec(rate_mbps=60.0),
                           FlowSpec(rate_mbps=10.0, direction="ul")),
                ),
            ),
            chain=(StageSpec(stage="prb_monitor"),),
        )

    return ScenarioSpec(
        name="conf-taps",
        cells=(cell("cell0", None), cell("cell1", None)),
        slots=slots,
        seed=11,
        obs=ObsSpec(enabled=True, conformance=True),
    )


class TestScaleIntegration:
    def test_per_shard_reports_merge_identically(self):
        spec = _scenario()
        solo = run_scenario(spec, workers=1)
        sharded = run_scenario(spec, workers=2)
        assert solo.digest == sharded.digest
        merged_solo = solo.conformance_report()
        merged_sharded = sharded.conformance_report()
        assert merged_solo.frames_checked == merged_sharded.frames_checked
        assert merged_solo.counts == merged_sharded.counts
        assert merged_solo.ok
        # Every group shipped its own serialized report.
        assert all(
            result.conformance["frames_checked"] > 0
            for result in solo.groups.values()
        )

    def test_conformance_off_by_default(self):
        spec = _scenario()
        spec = ScenarioSpec.from_dict(
            {**spec.to_dict(), "obs": {"enabled": False}}
        )
        result = run_scenario(spec, workers=1)
        assert all(not r.conformance for r in result.groups.values())
        report = result.conformance_report()
        assert report.frames_checked == 0 and report.ok

    def test_injected_loss_surfaces_as_seq_gaps(self):
        spec = _scenario(
            wire={"kind": "iid_loss", "rate": 0.25, "seed": 3}, slots=12
        )
        result = run_scenario(spec, workers=1)
        report = result.conformance_report()
        assert not report.ok
        # Loss manifests on the wire as skipped sequence numbers; nothing
        # else about the surviving frames is wrong.
        assert set(report.counts) <= {
            ViolationClass.SEQ_GAP.value,
            ViolationClass.PRB_SECTION_MISMATCH.value,
        }
        assert report.count(ViolationClass.SEQ_GAP) > 0

    def test_loss_report_identical_across_worker_counts(self):
        spec = _scenario(
            wire={"kind": "iid_loss", "rate": 0.25, "seed": 3}, slots=12
        )
        solo = run_scenario(spec, workers=1).conformance_report()
        sharded = run_scenario(spec, workers=2).conformance_report()
        assert solo.counts == sharded.counts
        assert solo.frames_checked == sharded.frames_checked
