"""Event engine, power model and cost model tests."""

import pytest

from repro.sim.cost import CostModel, DeploymentCost
from repro.sim.engine import EventEngine
from repro.sim.power import ServerLoad, ServerPowerModel, deployment_power_w


class TestEventEngine:
    def test_runs_in_time_order(self):
        engine = EventEngine()
        order = []
        engine.schedule(30, lambda: order.append("c"))
        engine.schedule(10, lambda: order.append("a"))
        engine.schedule(20, lambda: order.append("b"))
        assert engine.run() == 3
        assert order == ["a", "b", "c"]
        assert engine.now_ns == 30

    def test_fifo_tie_break(self):
        engine = EventEngine()
        order = []
        engine.schedule(10, lambda: order.append(1))
        engine.schedule(10, lambda: order.append(2))
        engine.run()
        assert order == [1, 2]

    def test_horizon_stops_early(self):
        engine = EventEngine()
        fired = []
        engine.schedule(10, lambda: fired.append(1))
        engine.schedule(100, lambda: fired.append(2))
        engine.run(until_ns=50)
        assert fired == [1]
        assert engine.pending() == 1

    def test_nested_scheduling(self):
        engine = EventEngine()
        fired = []

        def chain():
            fired.append(engine.now_ns)
            if len(fired) < 3:
                engine.schedule(5, chain)

        engine.schedule(5, chain)
        engine.run()
        assert fired == [5, 10, 15]

    def test_past_scheduling_rejected(self):
        engine = EventEngine()
        with pytest.raises(ValueError):
            engine.schedule(-1, lambda: None)
        engine.schedule(10, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.schedule_at(5, lambda: None)

    def test_event_cap(self):
        engine = EventEngine()

        def forever():
            engine.schedule(1, forever)

        engine.schedule(1, forever)
        assert engine.run(max_events=100) == 100


class TestPowerModel:
    def test_figure14_config_a(self):
        """Two servers running 5 cells + middleboxes: ~400 W."""
        model = ServerPowerModel()
        power = deployment_power_w(
            [ServerLoad(active_cores=32), ServerLoad(active_cores=3)], model
        )
        assert 350 <= power <= 430

    def test_figure14_config_b(self):
        """One half-loaded server, one off: ~180 W."""
        model = ServerPowerModel()
        power = deployment_power_w(
            [
                ServerLoad(active_cores=12, low_freq_cores=16),
                ServerLoad(active_cores=0, powered=False),
            ],
            model,
        )
        assert 160 <= power <= 210

    def test_off_server_draws_nothing(self):
        assert deployment_power_w([ServerLoad(32, powered=False)]) == 0.0

    def test_low_freq_cheaper_than_active(self):
        model = ServerPowerModel()
        assert model.power_w(16, 0) > model.power_w(0, 16)

    def test_core_budget_enforced(self):
        with pytest.raises(ValueError):
            ServerPowerModel().power_w(20, 20)

    def test_negative_cores_rejected(self):
        with pytest.raises(ValueError):
            ServerPowerModel().power_w(-1)


class TestCostModel:
    def test_appendix_a2_calibration(self):
        """~$60k commodity cost; 41% cheaper than conventional DAS at a
        50% margin (Appendix A.2)."""
        deployment = DeploymentCost()
        base = deployment.ranbooster_usd() / (1 + deployment.vendor_margin)
        assert base == pytest.approx(60_000, rel=0.03)
        assert deployment.conventional_usd() == pytest.approx(154_030)
        assert deployment.savings_fraction() == pytest.approx(0.41, abs=0.02)

    def test_cost_scales_with_rus(self):
        model = CostModel()
        small = model.ranbooster_deployment_usd(n_rus=4)
        large = model.ranbooster_deployment_usd(n_rus=16)
        assert large > small

    def test_rejects_zero_rus(self):
        with pytest.raises(ValueError):
            CostModel().ranbooster_deployment_usd(n_rus=0)

    def test_rejects_zero_area(self):
        with pytest.raises(ValueError):
            CostModel().conventional_das_usd(0)
