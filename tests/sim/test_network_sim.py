"""FronthaulNetwork and RadioEnvironment tests."""

import numpy as np
import pytest

from repro.core.middlebox import Middlebox
from repro.fronthaul.cplane import Direction
from repro.phy.geometry import Position
from repro.ran.du import DistributedUnit
from repro.ran.ru import RadioUnit, RuConfig
from repro.ran.traffic import ConstantBitrateFlow
from repro.sim.network_sim import (
    FronthaulNetwork,
    RadioEnvironment,
    UeTransmission,
)


@pytest.fixture
def loaded_network(cell_40mhz):
    du = DistributedUnit(du_id=1, cell=cell_40mhz, symbols_per_slot=1, seed=4)
    ru = RadioUnit(
        ru_id=1,
        config=RuConfig(num_prb=cell_40mhz.num_prb, n_antennas=2),
        mac=du.ru_mac,
        du_mac=du.mac,
    )
    du.scheduler.add_ue("ue", dl_layers=2)
    du.scheduler.update_ue_quality("ue", dl_aggregate_se=10.0, ul_se=3.0)
    du.attach_flow("ue", ConstantBitrateFlow(100, "dl"), Direction.DOWNLINK)
    du.attach_flow("ue", ConstantBitrateFlow(20, "ul"), Direction.UPLINK)
    network = FronthaulNetwork()
    network.add_du(du)
    network.add_ru(ru, Position(10, 10, 0))
    return network, du, ru


class TestRadioEnvironment:
    def test_relative_gain_unity_at_reference(self):
        env = RadioEnvironment(reference_distance_m=5.0)
        env.channel.params = env.channel.params.__class__(shadowing_sigma_db=0)
        env._reference_loss_db = env.channel.params.path_loss_db(5.0)
        tx = Position(0, 0, 0)
        rx = Position(5, 0, 0, height=tx.height)
        assert env.relative_gain(tx, rx) == pytest.approx(1.0, rel=0.01)

    def test_gain_decreases_with_distance(self):
        env = RadioEnvironment()
        tx = Position(0, 10, 0)
        near = env.relative_gain(tx, Position(3, 10, 0))
        far = env.relative_gain(tx, Position(40, 10, 0))
        assert near > far

    def test_combine_downlink_sums_transmissions(self, rng):
        env = RadioEnvironment()
        tx_a = Position(0, 10, 0)
        tx_b = Position(5, 10, 0)
        ue = Position(2.5, 10, 0)
        iq = np.ones(24, dtype=complex)
        combined = env.combine_downlink(
            ue, [(tx_a, iq), (tx_b, iq)], noise_amplitude=0.0, rng=rng
        )
        gain = env.relative_gain(tx_a, ue) + env.relative_gain(tx_b, ue)
        assert np.abs(combined - gain).max() < 1e-9

    def test_combine_uplink_none_when_quiet(self):
        env = RadioEnvironment()
        assert env.combine_uplink(Position(0, 0, 0), [], 24) is None

    def test_combine_uplink_size_checked(self):
        env = RadioEnvironment()
        tx = UeTransmission(Position(1, 1, 0), np.ones(10, dtype=complex))
        with pytest.raises(ValueError):
            env.combine_uplink(Position(0, 0, 0), [tx], 24)


class TestFronthaulNetwork:
    def test_slot_exchange_delivers_both_ways(self, loaded_network):
        network, du, ru = loaded_network
        reports = network.run(10)
        assert sum(r.dl_packets for r in reports) > 0
        assert sum(r.ul_packets for r in reports) > 0
        assert sum(r.undeliverable for r in reports) == 0
        assert du.counters.ul_bits > 0
        assert ru.counters.uplane_received > 0

    def test_passthrough_middlebox_transparent(self, cell_40mhz):
        du = DistributedUnit(du_id=1, cell=cell_40mhz, symbols_per_slot=1)
        ru = RadioUnit(
            ru_id=1,
            config=RuConfig(num_prb=cell_40mhz.num_prb, n_antennas=2),
            mac=du.ru_mac,
            du_mac=du.mac,
        )
        du.scheduler.add_ue("ue", dl_layers=2)
        du.attach_flow("ue", ConstantBitrateFlow(50, "dl"), Direction.DOWNLINK)
        box = Middlebox()
        network = FronthaulNetwork(middleboxes=[box])
        network.add_du(du)
        network.add_ru(ru)
        network.run(5)
        assert box.stats.rx_packets > 0
        assert box.stats.rx_packets == box.stats.tx_packets
        assert ru.counters.uplane_received > 0

    def test_unknown_destination_counted(self, cell_40mhz):
        du = DistributedUnit(du_id=1, cell=cell_40mhz, symbols_per_slot=1)
        du.scheduler.add_ue("ue", dl_layers=2)
        du.attach_flow("ue", ConstantBitrateFlow(50, "dl"), Direction.DOWNLINK)
        network = FronthaulNetwork()
        network.add_du(du)  # no RU attached
        reports = network.run(3)
        assert sum(r.undeliverable for r in reports) > 0

    def test_uplink_signal_fn_feeds_ru(self, loaded_network, rng):
        network, du, ru = loaded_network
        calls = []

        def signal(ru_obj, position, time, port):
            calls.append((time, port))
            return None

        network.run(6, uplink_signal_fn=signal)
        assert calls  # UL requests were answered through the hook

    def test_requires_du(self):
        with pytest.raises(RuntimeError):
            FronthaulNetwork().run_slot()
