"""Metrics registry: counters, gauges, histograms, labels, snapshots."""

import pytest

from repro.obs import MetricsRegistry


class TestCounter:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("packets_total", "packets")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counters_only_go_up(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labelled_children_are_independent(self):
        family = MetricsRegistry().counter(
            "bytes_total", "bytes", labels=("port", "direction")
        )
        family.labels("du", "tx").inc(100)
        family.labels("du", "rx").inc(7)
        assert family.labels("du", "tx").value == 100
        assert family.labels("du", "rx").value == 7

    def test_labels_by_keyword(self):
        family = MetricsRegistry().counter(
            "bytes_total", labels=("port", "direction")
        )
        family.labels(direction="tx", port="du").inc()
        assert family.labels("du", "tx").value == 1

    def test_label_arity_enforced(self):
        family = MetricsRegistry().counter("x_total", labels=("port",))
        with pytest.raises(ValueError):
            family.labels("du", "extra")

    def test_unlabelled_access_on_labelled_family_rejected(self):
        family = MetricsRegistry().counter("x_total", labels=("port",))
        with pytest.raises(ValueError):
            family.inc()


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7


class TestHistogram:
    def test_cumulative_buckets(self):
        hist = MetricsRegistry().histogram("ns", buckets=(100.0, 1000.0))
        for value in (50, 800, 5200):
            hist.observe(value)
        child = hist._require_default()
        assert child.count == 3
        assert child.sum == 6050
        assert child.cumulative_buckets() == [
            (100.0, 1), (1000.0, 2), (float("inf"), 3),
        ]

    def test_boundary_lands_in_its_bucket(self):
        hist = MetricsRegistry().histogram("ns", buckets=(100.0, 1000.0))
        hist.observe(100.0)  # le="100" includes the bound itself
        child = hist._require_default()
        assert child.cumulative_buckets()[0] == (100.0, 1)

    def test_mean(self):
        hist = MetricsRegistry().histogram("ns", buckets=(10.0,))
        hist.observe(2)
        hist.observe(4)
        assert hist._require_default().mean() == 3


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "help", labels=("a",))
        second = registry.counter("x_total", "different help", labels=("a",))
        assert first is second

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_label_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labels=("a",))
        with pytest.raises(ValueError):
            registry.counter("x_total", labels=("b",))

    def test_invalid_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad name")
        with pytest.raises(ValueError):
            registry.counter("")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("pk_total", "pk", labels=("port",)).labels("du").inc(2)
        registry.gauge("depth", "d").set(3)
        registry.histogram("ns", "h", buckets=(10.0,)).observe(4)
        snap = registry.snapshot()
        assert list(snap) == ["depth", "ns", "pk_total"]  # name-sorted
        assert snap["pk_total"]["type"] == "counter"
        assert snap["pk_total"]["labels"] == ["port"]
        assert snap["pk_total"]["series"] == {"du": 2}
        assert snap["depth"]["series"] == {"": 3}
        assert snap["ns"]["series"][""] == {
            "count": 1, "sum": 4.0, "buckets": {"10.0": 1, "inf": 1},
        }

    def test_unregister_and_clear(self):
        registry = MetricsRegistry()
        registry.counter("a_total")
        registry.counter("b_total")
        registry.unregister("a_total")
        assert registry.get("a_total") is None and len(registry) == 1
        registry.clear()
        assert len(registry) == 0
