"""SLO engine: objectives, sliding windows, edge-triggered burn alerts."""

import pytest

from repro.core.telemetry import TelemetryBus
from repro.obs.sketch import QuantileSketch
from repro.obs.slo import (
    ALERT_TOPIC,
    EpochSample,
    SloEngine,
    SloSpec,
    default_slos,
)


def miss_spec(**overrides):
    params = dict(
        name="miss-rate",
        objective="deadline_miss_rate",
        threshold=0.1,
        window_epochs=2,
    )
    params.update(overrides)
    return SloSpec(**params)


def sample(epoch, checks=10, misses=0, **extra):
    return EpochSample(
        epoch=epoch, deadline_checks=checks, deadline_misses=misses, **extra
    )


class TestSloSpec:
    def test_rejects_unknown_objective(self):
        with pytest.raises(ValueError, match="objective"):
            SloSpec(name="x", objective="availability", threshold=0.1)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("threshold", 0.0),
            ("window_epochs", 0),
            ("max_burn_rate", 0.0),
            ("min_samples", 0),
        ],
    )
    def test_rejects_out_of_range_fields(self, field, value):
        with pytest.raises(ValueError):
            miss_spec(**{field: value})

    def test_dict_round_trip(self):
        spec = miss_spec(max_burn_rate=2.0, min_samples=5)
        assert SloSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_keys(self):
        data = miss_spec().to_dict()
        data["severity"] = "page"
        with pytest.raises(KeyError, match="unknown keys"):
            SloSpec.from_dict(data)

    def test_default_slos_cover_every_objective(self):
        objectives = {spec.objective for spec in default_slos()}
        assert objectives == {
            "deadline_miss_rate",
            "p99_slot_latency_ns",
            "conformance_violation_rate",
            "breaker_opens",
        }


class TestEdgeTriggering:
    def test_fires_once_then_resolves_once(self):
        engine = SloEngine([miss_spec()])
        assert engine.observe_epoch(sample(0, misses=0)) == []
        burn_edges = engine.observe_epoch(sample(1, misses=5))
        assert [a.state for a in burn_edges] == ["firing"]
        # Still burning: no duplicate edge while the state holds.
        assert engine.observe_epoch(sample(2, misses=5)) == []
        assert engine.firing() == ["miss-rate"]
        # The 2-epoch window forgets the misses: one resolved edge.
        assert engine.observe_epoch(sample(3, misses=0)) == []
        resolved = engine.observe_epoch(sample(4, misses=0))
        assert [a.state for a in resolved] == ["resolved"]
        assert engine.firing() == []
        assert [a.state for a in engine.alerts] == ["firing", "resolved"]

    def test_min_samples_suppresses_startup_blips(self):
        engine = SloEngine([miss_spec(min_samples=50)])
        # 100% miss rate but only 10 underlying checks: stay quiet.
        assert engine.observe_epoch(sample(0, checks=10, misses=10)) == []
        edges = engine.observe_epoch(sample(1, checks=45, misses=45))
        assert [a.state for a in edges] == ["firing"]

    def test_burn_rate_is_value_over_threshold(self):
        engine = SloEngine([miss_spec(window_epochs=1)])
        (alert,) = engine.observe_epoch(sample(0, checks=10, misses=5))
        assert alert.value == pytest.approx(0.5)
        assert alert.burn_rate == pytest.approx(5.0)
        assert "5.00x" in alert.render()

    def test_duplicate_slo_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SloEngine([miss_spec(), miss_spec()])


class TestObjectives:
    def test_p99_latency_measured_over_merged_window_sketch(self):
        spec = SloSpec(
            name="p99",
            objective="p99_slot_latency_ns",
            threshold=1000.0,
            window_epochs=2,
        )
        engine = SloEngine([spec])
        low = QuantileSketch()
        for _ in range(50):
            low.observe(100.0)
        assert engine.observe_epoch(
            EpochSample(epoch=0, slot_sketch=low.sample())
        ) == []
        high = QuantileSketch()
        for _ in range(50):
            high.observe(5000.0)
        (alert,) = engine.observe_epoch(
            EpochSample(epoch=1, slot_sketch=high.sample())
        )
        assert alert.state == "firing"
        assert alert.value > 1000.0

    def test_conformance_rate_objective(self):
        spec = SloSpec(
            name="conf",
            objective="conformance_violation_rate",
            threshold=0.01,
            window_epochs=1,
        )
        engine = SloEngine([spec])
        assert engine.observe_epoch(
            EpochSample(epoch=0, frames_checked=100)
        ) == []
        (alert,) = engine.observe_epoch(
            EpochSample(epoch=1, frames_checked=100,
                        conformance_violations=3)
        )
        assert alert.value == pytest.approx(0.03)

    def test_breaker_opens_objective_counts_absolutely(self):
        spec = SloSpec(
            name="breaker",
            objective="breaker_opens",
            threshold=1.0,
            window_epochs=4,
        )
        engine = SloEngine([spec])
        assert engine.observe_epoch(EpochSample(epoch=0)) == []
        (alert,) = engine.observe_epoch(
            EpochSample(epoch=1, breaker_opens=1)
        )
        assert alert.state == "firing"
        assert alert.value == 1.0

    def test_unmeasurable_window_stays_silent(self):
        engine = SloEngine([miss_spec()])
        assert engine.observe_epoch(EpochSample(epoch=0)) == []
        assert engine.firing() == []


class TestBusAndStatus:
    def test_alert_edges_publish_on_the_bus(self):
        bus = TelemetryBus()
        engine = SloEngine(
            [miss_spec(window_epochs=1)], bus=bus, source="test-slo"
        )
        engine.observe_epoch(sample(0, misses=9))
        records = bus.history(ALERT_TOPIC)
        assert len(records) == 1
        assert records[0].payload["slo"] == "miss-rate"
        assert records[0].payload["state"] == "firing"
        assert records[0].source == "test-slo"

    def test_status_rows_expose_live_burn(self):
        engine = SloEngine([miss_spec(window_epochs=1)])
        engine.observe_epoch(sample(0, checks=10, misses=2))
        (row,) = engine.status()
        assert row["slo"] == "miss-rate"
        assert row["value"] == pytest.approx(0.2)
        assert row["burn_rate"] == pytest.approx(2.0)
        assert row["events"] == 10
        assert row["firing"] is True

    def test_status_before_any_epoch_is_unmeasured(self):
        engine = SloEngine([miss_spec()])
        (row,) = engine.status()
        assert row["value"] is None
        assert row["burn_rate"] is None
        assert row["firing"] is False
