"""Flight recorder: ring bound, queries, JSONL and Chrome trace exports."""

import json

import pytest

from repro.obs import FlightRecorder, PacketSpan, SpanEvent, SpanKey


def span(seq=0, middlebox="das", stage=0, direction="UL",
         traffic_class="UL U-Plane", dropped=False, start_ns=1000):
    return PacketSpan(
        key=SpanKey(eaxc=3, frame=1, subframe=2, slot=0, symbol=4,
                    direction=direction, seq=seq),
        middlebox=middlebox,
        traffic_class=traffic_class,
        modeled_ns=150.0,
        wall_ns=900.0,
        start_ns=start_ns,
        events=(SpanEvent("A1.route", 50.0, "kernel"),),
        emitted=1,
        dropped=dropped,
        stage=stage,
    )


class TestRing:
    def test_bounded_with_eviction_count(self):
        recorder = FlightRecorder(capacity=3)
        for seq in range(5):
            recorder.record(span(seq=seq))
        assert len(recorder) == 3
        assert recorder.evicted == 2
        # The newest spans survive, oldest roll off.
        assert [s.key.seq for s in recorder.spans()] == [2, 3, 4]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_clear_resets_evictions(self):
        recorder = FlightRecorder(capacity=1)
        recorder.record(span(0))
        recorder.record(span(1))
        recorder.clear()
        assert len(recorder) == 0 and recorder.evicted == 0


class TestQueries:
    def test_find_by_coordinates(self):
        recorder = FlightRecorder()
        recorder.record(span(seq=0, middlebox="das"))
        recorder.record(span(seq=1, middlebox="sharing", direction="DL",
                             traffic_class="DL C-Plane"))
        recorder.record(span(seq=2, middlebox="das", dropped=True))
        assert len(recorder.find(middlebox="das")) == 2
        assert len(recorder.find(direction="DL")) == 1
        assert len(recorder.find(traffic_class="DL C-Plane")) == 1
        assert len(recorder.find(dropped=True)) == 1
        assert len(recorder.find(slot_key=(1, 2, 0))) == 3
        assert recorder.find(middlebox="das", dropped=False)[0].key.seq == 0

    def test_packet_journey_orders_by_chain_stage(self):
        recorder = FlightRecorder()
        recorder.record(span(seq=7, middlebox="das", stage=1, start_ns=2000))
        recorder.record(span(seq=7, middlebox="sharing", stage=0,
                             start_ns=1000))
        journey = recorder.packet_journey(span(seq=7).key)
        assert [s.middlebox for s in journey] == ["sharing", "das"]


class TestExports:
    def test_jsonl_one_line_per_span(self):
        recorder = FlightRecorder()
        recorder.record(span(seq=0))
        recorder.record(span(seq=1))
        lines = recorder.to_jsonl().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["seq"] == 0 and first["middlebox"] == "das"
        assert first["events"] == [
            {"kind": "A1.route", "cost_ns": 50.0, "location": "kernel"}
        ]

    def test_chrome_trace_structure(self):
        recorder = FlightRecorder()
        recorder.record(span(middlebox="das"))
        recorder.record(span(middlebox="sharing"))
        trace = json.loads(recorder.to_chrome_trace())
        events = trace["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        slices = [e for e in events if e["ph"] == "X"]
        assert [m["args"]["name"] for m in meta] == ["das", "sharing"]
        assert len(slices) == 2
        # Timestamps and durations are microseconds.
        assert slices[0]["ts"] == 1.0 and slices[0]["dur"] == 0.9
        assert slices[0]["args"]["eaxc"] == 3
        assert slices[0]["args"]["actions"] == ["A1.route"]
