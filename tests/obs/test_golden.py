"""Golden tests: exact exposition bytes and one flight-recorder trace.

The exposition renderers promise deterministic output (families and label
sets sorted); these tests pin the exact text so any accidental format
drift — which would break real scrapers — fails loudly.
"""

import itertools
import json

from repro.core.middlebox import Middlebox
from repro.fronthaul.cplane import CPlaneMessage, CPlaneSection, Direction
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.packet import make_packet
from repro.fronthaul.timing import SymbolTime
from repro.obs import (
    MetricsRegistry,
    Observability,
    render_dashboard,
    render_json,
    render_prometheus,
)

GOLDEN_PROMETHEUS = """\
# HELP fh_latency_ns processing latency
# TYPE fh_latency_ns histogram
fh_latency_ns_bucket{le="100"} 1
fh_latency_ns_bucket{le="1000"} 2
fh_latency_ns_bucket{le="+Inf"} 3
fh_latency_ns_sum 6050
fh_latency_ns_count 3
# HELP fh_packets_total packets seen
# TYPE fh_packets_total counter
fh_packets_total{port="du"} 3
# HELP fh_queue_depth queue depth
# TYPE fh_queue_depth gauge
fh_queue_depth 2
"""

GOLDEN_JSONL = (
    '{"class": "DL C-Plane", "direction": "DL", "dropped": false,'
    ' "eaxc": 0, "emitted": 1, "events": [{"cost_ns": 50.0,'
    ' "kind": "A1.route", "location": "kernel"}], "frame": 8,'
    ' "group": "", "middlebox": "wire", "modeled_ns": 50.0, "seq": 42,'
    ' "shard": -1, "slot": 1, "stage": 0, "start_ns": 1000,'
    ' "subframe": 1, "symbol": 3, "wall_ns": 250.0}'
)


def sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter(
        "fh_packets_total", "packets seen", labels=("port",)
    ).labels("du").inc(3)
    registry.gauge("fh_queue_depth", "queue depth").set(2)
    latency = registry.histogram(
        "fh_latency_ns", "processing latency", buckets=(100.0, 1000.0)
    )
    for value in (50, 800, 5200):
        latency.observe(value)
    return registry


def test_prometheus_exposition_golden():
    assert render_prometheus(sample_registry()) == GOLDEN_PROMETHEUS


def test_prometheus_empty_registry_is_empty_string():
    assert render_prometheus(MetricsRegistry()) == ""


def test_json_roundtrip_matches_snapshot():
    registry = sample_registry()
    assert json.loads(render_json(registry)) == registry.snapshot()


def test_dashboard_sections():
    text = render_dashboard(sample_registry(), title="golden run")
    assert "golden run".center(72) in text
    assert "counters" in text and "gauges" in text and "histograms" in text
    assert "fh_packets_total{port=du}" in text


def test_flight_recorder_jsonl_golden():
    """One passthrough traversal with an injected clock pins the trace."""
    clock = itertools.count(1000, 250).__next__
    obs = Observability(enabled=True, clock=clock)
    box = Middlebox(name="wire", obs=obs)
    packet = make_packet(
        MacAddress.from_int(1),
        MacAddress.from_int(2),
        CPlaneMessage(
            direction=Direction.DOWNLINK,
            time=SymbolTime(frame=8, subframe=1, slot=1, symbol=3),
            sections=[CPlaneSection(0, 0, 50)],
        ),
        seq_id=42,
    )
    box.process(packet)
    assert obs.recorder.to_jsonl() == GOLDEN_JSONL
