"""Property tests: the quantile sketch's algebraic contract.

Hypothesis pins the three guarantees the streaming telemetry plane
leans on (see the :mod:`repro.obs.sketch` docstring): merge is
associative and commutative, every quantile is within the configured
relative accuracy of the exact sample quantile, and the plain-data
sample/diff forms round-trip losslessly through JSON.
"""

import json
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.sketch import (
    DEFAULT_RELATIVE_ACCURACY,
    MIN_TRACKABLE,
    QuantileSketch,
    SketchMergeError,
    diff_sample,
)

values_lists = st.lists(
    st.floats(min_value=0.0, max_value=1e9,
              allow_nan=False, allow_infinity=False),
    max_size=60,
)
nonempty_values = st.lists(
    st.floats(min_value=0.0, max_value=1e9,
              allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=60,
)


def sketch_of(values, accuracy=DEFAULT_RELATIVE_ACCURACY):
    sketch = QuantileSketch(relative_accuracy=accuracy)
    for value in values:
        sketch.observe(value)
    return sketch


def discrete_state(sketch):
    """Everything float-summation order cannot perturb."""
    return (
        dict(sketch.buckets), sketch.zeros, sketch.count,
        sketch.min, sketch.max,
    )


class TestMergeAlgebra:
    @given(a=values_lists, b=values_lists)
    @settings(max_examples=80, deadline=None)
    def test_merge_is_commutative(self, a, b):
        ab = sketch_of(a).merge(sketch_of(b))
        ba = sketch_of(b).merge(sketch_of(a))
        assert discrete_state(ab) == discrete_state(ba)
        assert ab.sum == pytest.approx(ba.sum, rel=1e-12, abs=1e-9)

    @given(a=values_lists, b=values_lists, c=values_lists)
    @settings(max_examples=80, deadline=None)
    def test_merge_is_associative(self, a, b, c):
        left = sketch_of(a).merge(sketch_of(b)).merge(sketch_of(c))
        right = sketch_of(a).merge(
            sketch_of(b).merge(sketch_of(c))
        )
        assert discrete_state(left) == discrete_state(right)
        assert left.sum == pytest.approx(right.sum, rel=1e-12, abs=1e-9)

    @given(a=values_lists, b=values_lists)
    @settings(max_examples=60, deadline=None)
    def test_merge_equals_observing_the_concatenation(self, a, b):
        merged = sketch_of(a).merge(sketch_of(b))
        direct = sketch_of(a + b)
        assert discrete_state(merged) == discrete_state(direct)

    def test_merge_rejects_mismatched_accuracy(self):
        with pytest.raises(SketchMergeError):
            QuantileSketch(0.01).merge(QuantileSketch(0.02))
        with pytest.raises(SketchMergeError):
            QuantileSketch(0.01).merge_sample(QuantileSketch(0.02).sample())


class TestQuantileAccuracy:
    @given(
        values=nonempty_values,
        q=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_quantile_within_relative_accuracy(self, values, q):
        sketch = sketch_of(values)
        estimate = sketch.quantile(q)
        ordered = sorted(values)
        exact = ordered[math.floor(q * (len(ordered) - 1))]
        if exact < MIN_TRACKABLE:
            # Sub-trackable values live in the exact zeros bucket; the
            # estimate is either exactly 0 or clamped to the tracked min.
            assert estimate <= sketch.min + 1e-9
        else:
            alpha = sketch.relative_accuracy
            assert abs(estimate - exact) <= alpha * exact * (1 + 1e-9) + 1e-9

    @given(values=nonempty_values)
    @settings(max_examples=60, deadline=None)
    def test_extremes_are_exact(self, values):
        sketch = sketch_of(values)
        assert sketch.quantile(0.0) == min(values)
        assert sketch.quantile(1.0) == max(values)

    def test_empty_sketch_reads_zero(self):
        assert QuantileSketch().quantile(0.5) == 0.0
        assert QuantileSketch().percentile(99) == 0.0

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            QuantileSketch().observe(-1.0)


class TestWireForms:
    @given(values=values_lists)
    @settings(max_examples=60, deadline=None)
    def test_sample_round_trips_through_json(self, values):
        sketch = sketch_of(values)
        wire = json.loads(json.dumps(sketch.sample()))
        assert QuantileSketch.from_sample(wire).sample() == sketch.sample()

    @given(first=values_lists, second=values_lists)
    @settings(max_examples=60, deadline=None)
    def test_diff_then_fold_reproduces_cumulative(self, first, second):
        # The epoch-delta discipline: ship diff(current, previous) and
        # fold it onto the previous state — must reproduce the current.
        earlier = sketch_of(first)
        current = sketch_of(first + second)
        delta = diff_sample(current.sample(), earlier.sample())
        folded = QuantileSketch.from_sample(earlier.sample())
        folded.merge_sample(delta)
        assert discrete_state(folded) == discrete_state(current)
        assert folded.sum == pytest.approx(
            current.sum, rel=1e-12, abs=1e-9
        )

    def test_diff_rejects_mismatched_accuracy(self):
        with pytest.raises(SketchMergeError):
            diff_sample(
                QuantileSketch(0.01).sample(), QuantileSketch(0.05).sample()
            )
