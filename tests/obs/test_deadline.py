"""Deadline accounting: per-slot budgets vs O-RAN timing windows."""

import pytest

from repro.fronthaul.timing import Numerology
from repro.obs import (
    DeadlineAccountant,
    Observability,
    SLOT_BUDGET_NS,
    SlotAccount,
    account_middleboxes,
)


class TestSlotAccount:
    def test_totals_and_headroom(self):
        account = SlotAccount(
            absolute_slot=3,
            per_stage_ns={"0:sharing": 10_000.0, "1:das": 15_000.0},
            budget_ns=SLOT_BUDGET_NS,
        )
        assert account.total_ns == 25_000.0
        assert not account.violated
        assert account.headroom_ns == 5_000.0

    def test_violation(self):
        account = SlotAccount(1, {"0:das": 31_000.0}, SLOT_BUDGET_NS)
        assert account.violated and account.headroom_ns == -1_000.0


class TestDeadlineAccountant:
    def test_budget_defaults_to_paper_allowance(self):
        accountant = DeadlineAccountant(numerology=Numerology(mu=1))
        assert accountant.budget_ns == SLOT_BUDGET_NS

    def test_budget_capped_by_symbol_window(self):
        # At mu=3 one symbol is ~8.9 us — a 30 us allowance is meaningless.
        mu3 = Numerology(mu=3)
        accountant = DeadlineAccountant(numerology=mu3)
        assert accountant.budget_ns == mu3.symbol_duration_ns
        assert accountant.budget_ns < SLOT_BUDGET_NS

    def test_counts_violations(self):
        accountant = DeadlineAccountant(budget_ns=1_000.0)
        accountant.observe_slot(0, {"0:box": 500.0})
        accountant.observe_slot(1, {"0:box": 1_500.0})
        accountant.observe_slot(2, {"0:box": 2_000.0})
        assert accountant.violations == 2
        assert accountant.violation_rate() == pytest.approx(2 / 3)
        assert accountant.worst_slot().absolute_slot == 2

    def test_stage_means(self):
        accountant = DeadlineAccountant(budget_ns=1_000.0)
        accountant.observe_slot(0, {"0:a": 100.0, "1:b": 200.0})
        accountant.observe_slot(1, {"0:a": 300.0, "1:b": 400.0})
        assert accountant.stage_means_ns() == {"0:a": 200.0, "1:b": 300.0}

    def test_empty_accountant(self):
        accountant = DeadlineAccountant()
        assert accountant.violation_rate() == 0.0
        assert accountant.worst_slot() is None

    def test_metrics_emitted_when_observed(self):
        obs = Observability(enabled=True)
        accountant = DeadlineAccountant(budget_ns=1_000.0, obs=obs)
        accountant.observe_slot(0, {"0:box": 2_000.0})
        accountant.observe_slot(1, {"0:box": 100.0})
        snap = obs.registry.snapshot()
        assert snap["fronthaul_deadline_checks_total"]["series"][""] == 2
        assert snap["fronthaul_deadline_violations_total"]["series"][""] == 1
        assert snap["fronthaul_deadline_headroom_ns"]["series"][""] == 900.0
        assert snap["fronthaul_stage_slot_ns"]["series"]["0:box"]["count"] == 2

    def test_no_metrics_when_disabled(self):
        obs = Observability(enabled=False)
        accountant = DeadlineAccountant(budget_ns=1_000.0, obs=obs)
        accountant.observe_slot(0, {"0:box": 2_000.0})
        assert obs.registry.snapshot() == {}
        assert accountant.violations == 1  # accounting still works

    def test_budget_report_format(self):
        accountant = DeadlineAccountant(budget_ns=30_000.0)
        accountant.observe_slot(0, {"0:das": 29_000.0})
        accountant.observe_slot(1, {"0:das": 31_000.0})
        report = accountant.budget_report(title="chain budget")
        assert report.splitlines()[0] == "chain budget"
        assert "budget (per slot)" in report
        assert "worst slot 1: 31.00 us (VIOLATED)" in report
        assert "slots checked: 2, violations: 1 (50.0%)" in report


class TestAccountMiddleboxes:
    def test_deltas_with_unique_stage_names(self):
        class Stats:
            def __init__(self, total):
                self.processing_ns_total = total

        class Box:
            def __init__(self, name, total):
                self.name = name
                self.stats = Stats(total)

        boxes = [Box("das", 500.0), Box("das", 800.0)]
        per_stage = account_middleboxes(boxes, [100.0, 300.0])
        assert per_stage == {"0:das": 400.0, "1:das": 500.0}


class TestFig15aMeasured:
    def test_measured_budget_reproduces_fig15a(self):
        from repro.eval.fig15 import run_fig15a_measured

        result = run_fig15a_measured(ru_counts=(2, 4), n_slots=2)
        assert set(result.accountants) == {2, 4}
        for accountant in result.accountants.values():
            assert accountant.accounts  # every slot was checked
        # More RUs -> more per-slot merge work (the Figure 15a trend).
        worst2 = result.accountants[2].worst_slot().total_ns
        worst4 = result.accountants[4].worst_slot().total_ns
        assert worst4 > worst2
        assert "Figure 15a (measured): DAS chain, 2 RUs" in result.format()
        assert "fronthaul_deadline_checks_total" in result.registry_text
