"""Cross-shard metric merging: N snapshots fold into one registry."""

import pytest

from repro.obs.metrics import MetricMergeError, MetricsRegistry


def _worker_registry(shard, packets, latencies):
    registry = MetricsRegistry()
    registry.counter("pkts_total", "packets", ["shard"]).labels(shard).inc(
        packets
    )
    registry.gauge("queue_depth", "depth").set(packets)
    hist = registry.histogram("lat_ns", "latency", buckets=(10.0, 100.0))
    for value in latencies:
        hist.observe(value)
    return registry


def test_counters_and_histograms_add_gauges_sum():
    merged = MetricsRegistry()
    merged.merge_snapshot(_worker_registry("a", 3, [5, 50, 500]).snapshot())
    merged.merge_snapshot(_worker_registry("b", 4, [7]).snapshot())
    assert merged.get("pkts_total").labels("a").value == 3
    assert merged.get("pkts_total").labels("b").value == 4
    assert merged.get("queue_depth").value == 7  # 3 + 4
    hist = merged.get("lat_ns")._children[()]
    assert hist.count == 4
    assert hist.sum == 562
    assert hist.bucket_counts == [2, 1]  # <=10: {5,7}; <=100: {50}


def test_merge_equals_single_registry():
    """Sharded counting merges to exactly what one registry would hold."""
    single = MetricsRegistry()
    family = single.histogram("h", "", buckets=(1.0, 2.0, 4.0))
    for value in (0.5, 1.5, 3.0, 9.0, 0.2):
        family.observe(value)

    merged = MetricsRegistry()
    for chunk in ((0.5, 1.5), (3.0,), (9.0, 0.2)):
        part = MetricsRegistry()
        ph = part.histogram("h", "", buckets=(1.0, 2.0, 4.0))
        for value in chunk:
            ph.observe(value)
        merged.merge_snapshot(part.snapshot())
    assert merged.snapshot() == single.snapshot()


def test_merge_into_populated_registry_accumulates():
    registry = MetricsRegistry()
    registry.counter("c", "").inc(2)
    other = MetricsRegistry()
    other.counter("c", "").inc(5)
    registry.merge_snapshot(other.snapshot())
    assert registry.get("c").value == 7


def test_bucket_bound_mismatch_raises():
    registry = MetricsRegistry()
    registry.histogram("h", "", buckets=(1.0, 2.0))
    other = MetricsRegistry()
    other.histogram("h", "", buckets=(3.0, 4.0)).observe(3.5)
    with pytest.raises(ValueError, match="histogram merge"):
        registry.merge_snapshot(other.snapshot())


def test_bound_mismatch_raises_typed_error_before_any_count_moves():
    registry = MetricsRegistry()
    live = registry.histogram("h", "", buckets=(1.0, 2.0))
    live.observe(0.5)
    other = MetricsRegistry()
    other.histogram("h", "", buckets=(3.0, 4.0)).observe(3.5)
    with pytest.raises(MetricMergeError):
        registry.merge_snapshot(other.snapshot())
    # Validation happened before folding: the live child is untouched.
    child = registry.get("h")._children[()]
    assert child.count == 1
    assert child.bucket_counts == [1, 0]


def test_all_zero_sample_over_wrong_bounds_still_raises():
    # Zero counts would fold "harmlessly", but accepting them would let a
    # structurally wrong series slip into the family: reject anyway.
    registry = MetricsRegistry()
    registry.histogram("h", "", buckets=(1.0, 2.0))
    other = MetricsRegistry()
    other.histogram("h", "", buckets=(5.0,))
    with pytest.raises(MetricMergeError):
        registry.merge_snapshot(other.snapshot())


def test_kind_conflict_raises_typed_error():
    registry = MetricsRegistry()
    registry.counter("x", "").inc()
    other = MetricsRegistry()
    other.gauge("x", "").set(3)
    with pytest.raises(MetricMergeError, match="already registered"):
        registry.merge_snapshot(other.snapshot())


def test_sketch_kind_merges_like_histograms():
    single = MetricsRegistry()
    family = single.sketch("s", "")
    for value in (10.0, 20.0, 30.0, 40.0):
        family.observe(value)
    merged = MetricsRegistry()
    for chunk in ((10.0, 20.0), (30.0, 40.0)):
        part = MetricsRegistry()
        child = part.sketch("s", "")
        for value in chunk:
            child.observe(value)
        merged.merge_snapshot(part.snapshot())
    assert merged.snapshot() == single.snapshot()


def test_sketch_accuracy_mismatch_raises_typed_error():
    registry = MetricsRegistry()
    registry.sketch("s", "", relative_accuracy=0.01).observe(1.0)
    other = MetricsRegistry()
    other.sketch("s", "", relative_accuracy=0.05).observe(2.0)
    with pytest.raises(MetricMergeError, match="sketch merge"):
        registry.merge_snapshot(other.snapshot())


def test_empty_snapshot_is_noop():
    registry = MetricsRegistry()
    registry.merge_snapshot({})
    assert len(registry) == 0
