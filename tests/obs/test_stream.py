"""The streaming telemetry plane: sources, coordinator fold, drain.

Covers the stream's core contracts outside the scale-out machinery
(which :mod:`tests.scale.test_stream_scale` exercises end to end):

- :meth:`FlightRecorder.drain` never re-delivers a span and accounts
  ring evictions exactly;
- :class:`GroupStreamSource` ships deltas mid-run, cumulative snapshots
  (plus the delta) at the final epoch, and stamps ``(group, shard)``;
- :class:`TelemetryStream` folds payloads into a live registry /
  recorder / deadline-accountant twins, publishes epoch summaries, and
  a DeadlineAccountant fed through the stream is indistinguishable from
  one fed directly (the Hypothesis property at the bottom).
"""

import io
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import Observability
from repro.obs.deadline import DeadlineAccountant
from repro.obs.recorder import FlightRecorder, PacketSpan, SpanKey
from repro.obs.slo import SloSpec
from repro.obs.stream import (
    DROPPED_SPANS_METRIC,
    EPOCH_TOPIC,
    GroupStreamSource,
    TelemetryStream,
)
from repro.core.telemetry import TelemetryBus


def make_span(seq, middlebox="das", stage=0):
    return PacketSpan(
        key=SpanKey(eaxc=1, frame=0, subframe=0, slot=0, symbol=0,
                    direction="UL", seq=seq),
        middlebox=middlebox,
        traffic_class="UL U-Plane",
        modeled_ns=100.0,
        wall_ns=0.0,
        start_ns=seq,
        stage=stage,
    )


class FakeGroup:
    """The duck-typed slice of BuiltGroup the stream source reads."""

    def __init__(self, name, capacity=64, budget_ns=1000.0):
        self.name = name
        self.obs = Observability(
            enabled=True, max_spans=capacity, clock=lambda: 0
        )
        self.accountant = DeadlineAccountant(
            budget_ns=budget_ns, obs=self.obs
        )
        self.validator = None


class TestDrain:
    def test_drain_never_redelivers(self):
        recorder = FlightRecorder(capacity=8)
        recorder.record(make_span(0))
        recorder.record(make_span(1))
        first, evicted = recorder.drain()
        assert [s.key.seq for s in first] == [0, 1]
        assert evicted == 0
        assert recorder.drain() == ([], 0)
        recorder.record(make_span(2))
        second, _ = recorder.drain()
        assert [s.key.seq for s in second] == [2]

    def test_drain_reports_interval_evictions(self):
        recorder = FlightRecorder(capacity=2)
        for seq in range(5):
            recorder.record(make_span(seq))
        spans, evicted = recorder.drain()
        # Only the 2 retained spans arrive; 3 rolled off unseen.
        assert [s.key.seq for s in spans] == [3, 4]
        assert evicted == 3
        # The next interval starts clean.
        recorder.record(make_span(5))
        spans, evicted = recorder.drain()
        assert [s.key.seq for s in spans] == [5]
        assert evicted == 0

    def test_clear_resets_drain_state(self):
        recorder = FlightRecorder(capacity=2)
        for seq in range(4):
            recorder.record(make_span(seq))
        recorder.drain()
        recorder.clear()
        recorder.record(make_span(9))
        spans, evicted = recorder.drain()
        assert [s.key.seq for s in spans] == [9]
        assert evicted == 0


class TestObservabilityMaxSpans:
    def test_max_spans_caps_the_ring(self):
        obs = Observability(enabled=True, max_spans=2)
        assert obs.recorder.capacity == 2

    def test_conflicting_recorder_capacity_rejected(self):
        recorder = FlightRecorder(capacity=8)
        with pytest.raises(ValueError, match="max_spans"):
            Observability(recorder=recorder, max_spans=16)


class TestGroupStreamSource:
    def test_mid_run_payloads_carry_deltas(self):
        group = FakeGroup("g1")
        source = GroupStreamSource(group, shard=2)
        group.obs.registry.counter("pkts", "").inc(3)
        first = source.epoch_payload()
        assert first["metrics_kind"] == "delta"
        assert first["metrics"]["pkts"]["series"][""] == 3
        group.obs.registry.counter("pkts", "").inc(4)
        second = source.epoch_payload()
        assert second["metrics"]["pkts"]["series"][""] == 4  # not 7

    def test_final_payload_ships_cumulative_plus_delta(self):
        group = FakeGroup("g1")
        source = GroupStreamSource(group, shard=0)
        group.obs.registry.counter("pkts", "").inc(3)
        source.epoch_payload()
        group.obs.registry.counter("pkts", "").inc(4)
        final = source.epoch_payload(final=True)
        assert final["metrics_kind"] == "cumulative"
        assert final["metrics"]["pkts"]["series"][""] == 7
        assert final["metrics_delta"]["pkts"]["series"][""] == 4

    def test_spans_are_stamped_with_group_and_shard(self):
        group = FakeGroup("g1")
        source = GroupStreamSource(group, shard=3)
        group.obs.recorder.record(make_span(0))
        payload = source.epoch_payload()
        (span,) = payload["spans"]
        assert span.key.group == "g1"
        assert span.key.shard == 3
        # The worker-side span is untouched (stamping is copy-on-ship).
        assert group.obs.recorder.spans()[0].key.group == ""

    def test_ring_overflow_bumps_the_dropped_counter(self):
        group = FakeGroup("g1", capacity=2)
        source = GroupStreamSource(group, shard=0)
        for seq in range(6):
            group.obs.recorder.record(make_span(seq))
        payload = source.epoch_payload()
        assert payload["spans_dropped"] == 4
        dropped = payload["metrics"][DROPPED_SPANS_METRIC]["series"]["g1"]
        assert dropped == 4

    def test_deadline_accounts_ship_once(self):
        group = FakeGroup("g1")
        source = GroupStreamSource(group, shard=0)
        group.accountant.observe_slot(0, {"0:das": 500.0})
        first = source.epoch_payload()
        assert len(first["deadline"]) == 1
        group.accountant.observe_slot(1, {"0:das": 2000.0})
        second = source.epoch_payload()
        assert len(second["deadline"]) == 1
        assert second["deadline"][0]["slot"] == 1

    def test_stream_off_ships_metrics_only(self):
        group = FakeGroup("g1")
        source = GroupStreamSource(group, shard=0, stream=False)
        group.obs.recorder.record(make_span(0))
        group.accountant.observe_slot(0, {"0:das": 10.0})
        payload = source.epoch_payload()
        assert "spans" not in payload
        assert "deadline" not in payload
        assert "metrics" in payload


class TestTelemetryStreamFold:
    def _sources(self):
        groups = [FakeGroup("a"), FakeGroup("b")]
        return groups, [
            GroupStreamSource(g, shard=i) for i, g in enumerate(groups)
        ]

    def test_final_fold_equals_sorted_cumulative_merge(self):
        groups, sources = self._sources()
        stream = TelemetryStream()
        for epoch in range(3):
            for i, group in enumerate(groups):
                group.obs.registry.counter("pkts", "", ["g"]).labels(
                    group.name
                ).inc(epoch + i + 1)
            stream.fold_epoch(
                [s.epoch_payload(final=epoch == 2) for s in sources]
            )
        assert stream.finalized
        from repro.obs.metrics import MetricsRegistry

        expected = MetricsRegistry()
        for group in sorted(groups, key=lambda g: g.name):
            expected.merge_snapshot(group.obs.registry.snapshot())
        assert stream.live_snapshot() == expected.snapshot()

    def test_accountant_twins_match_worker_accountants(self):
        groups, sources = self._sources()
        stream = TelemetryStream()
        for epoch in range(2):
            for group in groups:
                group.accountant.observe_slot(
                    epoch, {"0:x": 500.0 + 1000.0 * epoch}
                )
            stream.fold_epoch(
                [s.epoch_payload(final=epoch == 1) for s in sources]
            )
        for group in groups:
            twin = stream.accountants[group.name]
            assert twin.violations == group.accountant.violations
            assert len(twin.accounts) == len(group.accountant.accounts)
            assert (
                twin.latency_sketch.sample()
                == group.accountant.latency_sketch.sample()
            )

    def test_epoch_summaries_reach_bus_and_tail(self):
        groups, sources = self._sources()
        bus = TelemetryBus()
        tail = io.StringIO()
        stream = TelemetryStream(
            bus=bus,
            slo_specs=(
                SloSpec(
                    name="miss",
                    objective="deadline_miss_rate",
                    threshold=0.01,
                    window_epochs=1,
                ),
            ),
            tail=tail,
        )
        for group in groups:
            group.accountant.observe_slot(0, {"0:x": 5000.0})  # misses
        stream.fold_epoch([s.epoch_payload() for s in sources])
        records = bus.history(EPOCH_TOPIC)
        assert len(records) == 1
        assert records[0].payload["deadline_misses"] == 2
        assert records[0].payload["firing"] == ["miss"]
        lines = tail.getvalue().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["epoch"] == 0
        assert stream.slo.alerts[0].state == "firing"

    def test_cross_shard_journey_reassembles_from_streamed_spans(self):
        groups, sources = self._sources()
        stream = TelemetryStream()
        # The same wire frame recorded on two different shards.
        groups[0].obs.recorder.record(make_span(7, middlebox="das", stage=0))
        groups[1].obs.recorder.record(
            make_span(7, middlebox="sharing", stage=1)
        )
        stream.fold_epoch([s.epoch_payload() for s in sources])
        journey = stream.recorder.packet_journey(
            SpanKey(eaxc=1, frame=0, subframe=0, slot=0, symbol=0,
                    direction="UL", seq=7)
        )
        assert [(s.middlebox, s.key.group, s.key.shard) for s in journey] == [
            ("das", "a", 0),
            ("sharing", "b", 1),
        ]


slot_latencies = st.lists(
    st.floats(min_value=0.0, max_value=50_000.0,
              allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=40,
)


@given(latencies=slot_latencies, epoch=st.integers(min_value=1, max_value=7))
@settings(max_examples=60, deadline=None)
def test_accountant_direct_vs_streamed_identity(latencies, epoch):
    """An accountant fed epoch-folded wire deltas is indistinguishable
    from one that observed every slot directly."""
    direct = DeadlineAccountant(budget_ns=30_000.0)
    twin = DeadlineAccountant(budget_ns=30_000.0)
    pending = []
    for slot, total_ns in enumerate(latencies):
        account = direct.observe_slot(slot, {"0:chain": total_ns})
        pending.append(account.to_wire())
        if len(pending) == epoch:
            twin.ingest(pending)
            pending = []
    twin.ingest(pending)
    assert twin.violations == direct.violations
    assert twin.accounts == direct.accounts
    assert twin.latency_sketch.sample() == direct.latency_sketch.sample()
    assert twin.percentile(99) == direct.percentile(99)
