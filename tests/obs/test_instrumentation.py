"""Datapath instrumentation: middlebox, chain, engine, sampling switch."""

from repro.core.chain import MiddleboxChain
from repro.core.middlebox import Middlebox
from repro.fronthaul.cplane import CPlaneMessage, CPlaneSection, Direction
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.packet import make_packet
from repro.fronthaul.timing import SymbolTime
from repro.obs import Observability
from repro.sim.engine import EventEngine


def packet(seq=0):
    return make_packet(
        MacAddress.from_int(1),
        MacAddress.from_int(2),
        CPlaneMessage(
            direction=Direction.DOWNLINK,
            time=SymbolTime(0, 0, 0, 0),
            sections=[CPlaneSection(0, 0, 50)],
        ),
        seq_id=seq,
    )


class Absorber(Middlebox):
    """Drops everything (no emissions)."""

    app_name = "absorber"

    def on_cplane(self, ctx, pkt):
        pass

    on_uplane = on_cplane


class TestSamplingSwitch:
    def test_every_packet_sampled_by_default(self):
        obs = Observability(enabled=True)
        assert [obs.should_sample() for _ in range(4)] == [True] * 4

    def test_decimation(self):
        obs = Observability(enabled=True, sample_every=4)
        decisions = [obs.should_sample() for _ in range(8)]
        assert decisions.count(True) == 2

    def test_sample_every_validated(self):
        import pytest

        with pytest.raises(ValueError):
            Observability(sample_every=0)

    def test_reset_drops_everything(self):
        obs = Observability(enabled=True)
        box = Middlebox(obs=obs)
        box.process(packet())
        obs.reset()
        assert obs.registry.snapshot() == {}
        assert len(obs.recorder) == 0


class TestMiddleboxInstrumentation:
    def test_disabled_obs_writes_nothing(self):
        obs = Observability(enabled=False)
        box = Middlebox(obs=obs)
        box.process(packet())
        assert obs.registry.snapshot() == {}
        assert len(obs.recorder) == 0
        # Plain stats counters still work without observability.
        assert box.stats.rx_packets == 1 and box.stats.tx_packets == 1

    def test_account_rx_counts_wire_bytes(self):
        box = Middlebox()
        frame = packet()
        assert box.stats.account_rx(frame) == frame.wire_size
        assert box.stats.rx_packets == 1
        assert box.stats.rx_bytes == frame.wire_size

    def test_enabled_obs_counts_packets_and_bytes(self):
        obs = Observability(enabled=True)
        box = Middlebox(name="wire", obs=obs)
        frame = packet()
        box.process(frame)
        snap = obs.registry.snapshot()
        assert snap["middlebox_packets_total"]["series"][
            "wire,DL C-Plane"
        ] == 1
        assert snap["middlebox_bytes_total"]["series"][
            "wire,rx"
        ] == frame.wire_size
        assert snap["middlebox_bytes_total"]["series"][
            "wire,tx"
        ] == frame.wire_size
        assert snap["middlebox_modeled_ns"]["series"][
            "wire,DL C-Plane"
        ]["count"] == 1
        assert len(obs.recorder) == 1

    def test_drops_counted(self):
        obs = Observability(enabled=True)
        box = Absorber(obs=obs)
        box.process(packet())
        snap = obs.registry.snapshot()
        assert snap["middlebox_drops_total"]["series"]["absorber"] == 1
        assert "absorber,tx" not in snap["middlebox_bytes_total"]["series"]
        span = obs.recorder.spans()[0]
        assert span.dropped and span.emitted == 0

    def test_span_sampling_decimates_recorder_not_metrics(self):
        obs = Observability(enabled=True, sample_every=4)
        box = Middlebox(name="wire", obs=obs)
        for seq in range(8):
            box.process(packet(seq))
        snap = obs.registry.snapshot()
        assert snap["middlebox_packets_total"]["series"][
            "wire,DL C-Plane"
        ] == 8
        assert len(obs.recorder) == 2


class TestChainInstrumentation:
    def test_stage_metrics_per_direction(self):
        obs = Observability(enabled=True)
        chain = MiddleboxChain(
            [Middlebox(name="a"), Middlebox(name="b")],
            name="duo", obs=obs,
        )
        chain.process_downlink([packet(0), packet(1)])
        chain.process_uplink([packet(2)])
        snap = obs.registry.snapshot()
        assert snap["chain_packets_total"]["series"]["duo,DL"] == 2
        assert snap["chain_packets_total"]["series"]["duo,UL"] == 1
        stages = snap["chain_stage_burst_ns"]["series"]
        assert stages["duo,0:a,DL"]["count"] == 1
        assert stages["duo,1:b,UL"]["count"] == 1
        # Cumulative latency through stage 2 >= latency of stage 2 alone.
        cumulative = snap["chain_cumulative_burst_ns"]["series"]
        assert cumulative["duo,1:b,DL"]["sum"] >= stages["duo,1:b,DL"]["sum"]

    def test_chain_stages_assigned(self):
        boxes = [Middlebox(name="a"), Middlebox(name="b")]
        MiddleboxChain(boxes)
        assert [box.chain_stage for box in boxes] == [0, 1]

    def test_disabled_chain_is_silent(self):
        obs = Observability(enabled=False)
        chain = MiddleboxChain([Middlebox()], obs=obs)
        out = chain.process_downlink([packet()])
        assert len(out) == 1
        assert obs.registry.snapshot() == {}


class TestEngineInstrumentation:
    def test_event_counters_and_lag(self):
        obs = Observability(enabled=True)
        engine = EventEngine(obs=obs)
        engine.schedule(100.0, lambda: None)
        engine.schedule(300.0, lambda: None)
        engine.run()
        snap = obs.registry.snapshot()
        assert snap["engine_events_total"]["series"][""] == 2
        lag = snap["engine_event_lag_ns"]["series"][""]
        assert lag["count"] == 2 and lag["sum"] == 400.0
        assert snap["engine_queue_depth"]["series"][""] == 0

    def test_disabled_engine_is_silent(self):
        obs = Observability(enabled=False)
        engine = EventEngine(obs=obs)
        engine.schedule(1.0, lambda: None)
        assert engine.run() == 1
        assert obs.registry.snapshot() == {}
