"""dMIMO middlebox unit tests (Section 4.2)."""

import pytest

from repro.apps.dmimo import DmimoMiddlebox, RuPortMap, SsbSchedule
from repro.fronthaul.cplane import CPlaneMessage, CPlaneSection, Direction
from repro.fronthaul.ecpri import EAxCId
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.packet import make_packet
from repro.fronthaul.timing import SymbolTime
from repro.fronthaul.uplane import UPlaneMessage, UPlaneSection

from tests.conftest import random_prb_samples


@pytest.fixture
def ru_a():
    return MacAddress.from_int(0x31)


@pytest.fixture
def ru_b():
    return MacAddress.from_int(0x32)


@pytest.fixture
def port_map(ru_a, ru_b):
    # Figure 5b: two 2-antenna RUs forming a 4-port virtual RU.
    return RuPortMap(groups=((ru_a, 2), (ru_b, 2)))


@pytest.fixture
def dmimo(du_mac, port_map):
    return DmimoMiddlebox(du_mac=du_mac, port_map=port_map)


def dl_uplane(rng, du_mac, port, time=None, n_prbs=8):
    section = UPlaneSection.from_samples(0, 0, random_prb_samples(rng, n_prbs))
    return make_packet(
        du_mac, MacAddress.from_int(0xFF),  # virtual RU address
        UPlaneMessage(direction=Direction.DOWNLINK,
                      time=time or SymbolTime(0, 0, 0, 1),
                      sections=[section]),
        eaxc=EAxCId(du_port=0, ru_port=port),
    )


def ul_uplane(rng, src, du_mac, port):
    section = UPlaneSection.from_samples(0, 0, random_prb_samples(rng, 8))
    return make_packet(
        src, du_mac,
        UPlaneMessage(direction=Direction.UPLINK,
                      time=SymbolTime(0, 0, 0, 10),
                      sections=[section]),
        eaxc=EAxCId(du_port=0, ru_port=port),
    )


class TestRuPortMap:
    def test_figure_5b_mapping(self, port_map, ru_a, ru_b):
        assert port_map.to_local(0) == (ru_a, 0)
        assert port_map.to_local(1) == (ru_a, 1)
        assert port_map.to_local(2) == (ru_b, 0)
        assert port_map.to_local(3) == (ru_b, 1)

    def test_reverse_mapping(self, port_map, ru_a, ru_b):
        assert port_map.to_global(ru_a, 1) == 1
        assert port_map.to_global(ru_b, 0) == 2
        assert port_map.to_global(ru_b, 1) == 3

    def test_roundtrip_all_ports(self, port_map):
        for global_port in range(port_map.total_ports):
            mac, local = port_map.to_local(global_port)
            assert port_map.to_global(mac, local) == global_port

    def test_out_of_range(self, port_map, ru_a):
        with pytest.raises(ValueError):
            port_map.to_local(4)
        with pytest.raises(ValueError):
            port_map.to_global(ru_a, 2)
        with pytest.raises(ValueError):
            port_map.to_global(MacAddress.from_int(0x99), 0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RuPortMap(groups=())

    def test_secondary_first_ports(self, port_map, ru_b):
        assert port_map.secondary_first_ports() == [(ru_b, 2)]


class TestDownlinkRemap:
    def test_low_ports_unmodified(self, dmimo, rng, du_mac, ru_a):
        """Ports 0-1 already match RU 1's local numbering (Section 4.2)."""
        result = dmimo.process(dl_uplane(rng, du_mac, port=1))
        packet = result.emissions[0].packet
        assert packet.eth.dst == ru_a
        assert packet.eaxc.ru_port == 1

    def test_high_ports_remapped(self, dmimo, rng, du_mac, ru_b):
        """Ports 2-3 remap to RU 2's local ports 0-1."""
        result = dmimo.process(dl_uplane(rng, du_mac, port=3))
        packet = result.emissions[0].packet
        assert packet.eth.dst == ru_b
        assert packet.eaxc.ru_port == 1

    def test_cplane_remapped_too(self, dmimo, du_mac, ru_b):
        message = CPlaneMessage(
            direction=Direction.DOWNLINK,
            time=SymbolTime(0, 0, 0, 0),
            sections=[CPlaneSection(0, 0, 106)],
        )
        packet = make_packet(du_mac, MacAddress.from_int(0xFF), message,
                             eaxc=EAxCId(du_port=0, ru_port=2))
        result = dmimo.process(packet)
        out = result.emissions[0].packet
        assert out.eth.dst == ru_b
        assert out.eaxc.ru_port == 0

    def test_payload_untouched_by_remap(self, dmimo, rng, du_mac):
        packet = dl_uplane(rng, du_mac, port=2)
        original = packet.message.sections[0].payload
        result = dmimo.process(packet)
        assert result.emissions[0].packet.message.sections[0].payload == original


class TestUplinkRemap:
    def test_ru2_ports_mapped_to_global(self, dmimo, rng, du_mac, ru_b):
        result = dmimo.process(ul_uplane(rng, ru_b, du_mac, port=1))
        packet = result.emissions[0].packet
        assert packet.eth.dst == du_mac
        assert packet.eaxc.ru_port == 3

    def test_ru1_ports_unchanged(self, dmimo, rng, du_mac, ru_a):
        result = dmimo.process(ul_uplane(rng, ru_a, du_mac, port=0))
        assert result.emissions[0].packet.eaxc.ru_port == 0

    def test_bidirectional_consistency(self, dmimo, rng, du_mac, ru_a, ru_b):
        """DL then UL remap is the identity on the global port space."""
        for global_port in range(4):
            down = dmimo.process(dl_uplane(rng, du_mac, port=global_port))
            out = down.emissions[0].packet
            back = ul_uplane(rng, out.eth.dst, du_mac, out.eaxc.ru_port)
            up = dmimo.process(back)
            assert up.emissions[0].packet.eaxc.ru_port == global_port


class TestSsbReplication:
    @pytest.fixture
    def ssb(self):
        return SsbSchedule(period_slots=40, symbols=(1,), prb_start=2,
                           num_prb=4)

    @pytest.fixture
    def dmimo_ssb(self, du_mac, port_map, ssb):
        return DmimoMiddlebox(du_mac=du_mac, port_map=port_map, ssb=ssb)

    def ssb_time(self):
        return SymbolTime(0, 0, 0, 1)  # slot 0, symbol 1

    def test_ssb_copied_to_secondary(self, dmimo_ssb, rng, du_mac, ru_b):
        primary = dl_uplane(rng, du_mac, port=0, time=self.ssb_time())
        ssb_bytes = primary.message.sections[0].prb_payload(3)
        dmimo_ssb.process(primary)
        secondary = dl_uplane(rng, du_mac, port=2, time=self.ssb_time())
        result = dmimo_ssb.process(secondary)
        out = result.emissions[0].packet
        assert out.eth.dst == ru_b
        assert out.message.sections[0].prb_payload(3) == ssb_bytes
        assert dmimo_ssb.ssb_copies == 1

    def test_ssb_copy_preserves_other_prbs(self, dmimo_ssb, rng, du_mac):
        dmimo_ssb.process(dl_uplane(rng, du_mac, port=0, time=self.ssb_time()))
        secondary = dl_uplane(rng, du_mac, port=2, time=self.ssb_time())
        before = secondary.message.sections[0].prb_payload(0)
        result = dmimo_ssb.process(secondary)
        assert result.emissions[0].packet.message.sections[0].prb_payload(0) == before

    def test_secondary_before_primary_held(self, dmimo_ssb, rng, du_mac):
        """Out-of-order arrival: the secondary packet waits for the SSB."""
        secondary = dl_uplane(rng, du_mac, port=2, time=self.ssb_time())
        held = dmimo_ssb.process(secondary)
        assert held.emissions == []
        primary = dl_uplane(rng, du_mac, port=0, time=self.ssb_time())
        released = dmimo_ssb.process(primary)
        # Primary's own emission plus the released secondary.
        assert len(released.emissions) == 2
        assert dmimo_ssb.ssb_copies == 1

    def test_non_ssb_symbols_not_copied(self, dmimo_ssb, rng, du_mac):
        other_time = SymbolTime(0, 0, 0, 3)
        dmimo_ssb.process(dl_uplane(rng, du_mac, port=0, time=other_time))
        dmimo_ssb.process(dl_uplane(rng, du_mac, port=2, time=other_time))
        assert dmimo_ssb.ssb_copies == 0

    def test_non_ssb_slots_not_copied(self, dmimo_ssb, rng, du_mac):
        off_slot = SymbolTime(0, 0, 1, 1)  # slot 1: not an SSB slot
        dmimo_ssb.process(dl_uplane(rng, du_mac, port=0, time=off_slot))
        dmimo_ssb.process(dl_uplane(rng, du_mac, port=2, time=off_slot))
        assert dmimo_ssb.ssb_copies == 0

    def test_ssb_disabled_without_schedule(self, dmimo, rng, du_mac):
        dmimo.process(dl_uplane(rng, du_mac, port=0, time=self.ssb_time()))
        dmimo.process(dl_uplane(rng, du_mac, port=2, time=self.ssb_time()))
        assert dmimo.ssb_copies == 0
