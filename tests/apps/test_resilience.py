"""Resilience middlebox tests (Section 8.1 RAN resilience use case)."""

import pytest

from repro.apps.resilience import TELEMETRY_TOPIC, ResilienceMiddlebox
from repro.fronthaul.cplane import CPlaneMessage, CPlaneSection, Direction
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.packet import make_packet
from repro.fronthaul.timing import Numerology, SymbolTime
from repro.fronthaul.uplane import UPlaneMessage, UPlaneSection

from tests.conftest import random_prb_samples


@pytest.fixture
def primary():
    return MacAddress.from_int(0x61)


@pytest.fixture
def standby():
    return MacAddress.from_int(0x62)


@pytest.fixture
def box(primary, standby, ru_mac):
    return ResilienceMiddlebox(
        primary_du=primary,
        standby_du=standby,
        ru_mac=ru_mac,
        silence_threshold_ns=2_000_000.0,  # 4 slots
    )


def dl_cplane(src, dst, slot=0):
    time = SymbolTime.from_absolute_slot(slot, Numerology(mu=1))
    return make_packet(
        src, dst,
        CPlaneMessage(direction=Direction.DOWNLINK, time=time,
                      sections=[CPlaneSection(0, 0, 106)]),
    )


def ul_uplane(rng, src, dst, slot=0):
    time = SymbolTime.from_absolute_slot(slot, Numerology(mu=1), symbol=10)
    section = UPlaneSection.from_samples(0, 0, random_prb_samples(rng, 4))
    return make_packet(
        src, dst,
        UPlaneMessage(direction=Direction.UPLINK, time=time,
                      sections=[section]),
    )


class TestSteadyState:
    def test_primary_traffic_forwarded_to_ru(self, box, primary, ru_mac):
        result = box.process(dl_cplane(primary, ru_mac))
        assert len(result.emissions) == 1
        assert result.emissions[0].packet.eth.dst == ru_mac

    def test_standby_traffic_suppressed(self, box, standby, ru_mac):
        result = box.process(dl_cplane(standby, ru_mac))
        assert result.emissions == []

    def test_uplink_steered_to_primary(self, box, rng, primary, ru_mac):
        box.process(dl_cplane(primary, ru_mac, slot=0))
        result = box.process(ul_uplane(rng, ru_mac, primary, slot=1))
        assert result.emissions[0].packet.eth.dst == primary
        assert box.events == []


class TestFailover:
    def drive_failure(self, box, rng, primary, ru_mac, fail_after_slot=2,
                      total_slots=12):
        """Primary goes silent after ``fail_after_slot``."""
        for slot in range(total_slots):
            if slot <= fail_after_slot:
                box.process(dl_cplane(primary, ru_mac, slot=slot))
            box.process(ul_uplane(rng, ru_mac, primary, slot=slot))

    def test_failover_triggers_after_silence(self, box, rng, primary,
                                             standby, ru_mac):
        self.drive_failure(box, rng, primary, ru_mac)
        assert len(box.events) == 1
        event = box.events[0]
        assert event.failed_du == primary
        assert event.standby_du == standby
        assert event.silence_ns > box.management.get("silence_threshold_ns")
        assert box.active_du == standby

    def test_uplink_rerouted_after_failover(self, box, rng, primary, standby,
                                            ru_mac):
        self.drive_failure(box, rng, primary, ru_mac)
        result = box.process(ul_uplane(rng, ru_mac, primary, slot=13))
        assert result.emissions[0].packet.eth.dst == standby

    def test_standby_downlink_admitted_after_failover(self, box, rng,
                                                      primary, standby,
                                                      ru_mac):
        self.drive_failure(box, rng, primary, ru_mac)
        result = box.process(dl_cplane(standby, ru_mac, slot=14))
        assert result.emissions[0].packet.eth.dst == ru_mac

    def test_late_primary_suppressed_after_failover(self, box, rng, primary,
                                                    ru_mac):
        """Split-brain prevention: the failed DU's late packets die."""
        self.drive_failure(box, rng, primary, ru_mac)
        result = box.process(dl_cplane(primary, ru_mac, slot=15))
        assert result.emissions == []

    def test_failover_within_few_slots(self, box, rng, primary, ru_mac):
        """Section 8.1: re-routing 'within a few milliseconds'."""
        self.drive_failure(box, rng, primary, ru_mac)
        event = box.events[0]
        detection_delay_ms = event.silence_ns / 1e6
        assert detection_delay_ms < 5.0

    def test_telemetry_published(self, box, rng, primary, ru_mac):
        seen = []
        box.telemetry.subscribe(TELEMETRY_TOPIC, seen.append)
        self.drive_failure(box, rng, primary, ru_mac)
        assert len(seen) == 1

    def test_no_failover_while_primary_alive(self, box, rng, primary,
                                             ru_mac):
        for slot in range(20):
            box.process(dl_cplane(primary, ru_mac, slot=slot))
            box.process(ul_uplane(rng, ru_mac, primary, slot=slot))
        assert box.events == []
        assert box.active_du == primary

    def test_failback(self, box, rng, primary, ru_mac):
        self.drive_failure(box, rng, primary, ru_mac)
        box.failback()
        assert box.active_du == primary
        result = box.process(dl_cplane(primary, ru_mac, slot=16))
        assert len(result.emissions) == 1
