"""DAS middlebox unit tests (Section 4.1)."""

import numpy as np
import pytest

from repro.apps.das import DasMiddlebox
from repro.fronthaul.cplane import CPlaneMessage, CPlaneSection, Direction
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.packet import make_packet
from repro.fronthaul.timing import SymbolTime
from repro.fronthaul.uplane import UPlaneMessage, UPlaneSection

from tests.conftest import random_prb_samples


@pytest.fixture
def ru_macs():
    return [MacAddress.from_int(0x20 + i) for i in range(3)]


@pytest.fixture
def das(du_mac, ru_macs):
    return DasMiddlebox(du_mac=du_mac, ru_macs=ru_macs)


def dl_uplane(rng, du_mac, ru_mac, time=None):
    section = UPlaneSection.from_samples(0, 0, random_prb_samples(rng, 8))
    return make_packet(
        du_mac, ru_mac,
        UPlaneMessage(direction=Direction.DOWNLINK,
                      time=time or SymbolTime(0, 0, 0, 0),
                      sections=[section]),
    )


def ul_uplane(rng, ru_mac, du_mac, time=None, port=0, amplitude=3000):
    section = UPlaneSection.from_samples(
        0, 0, random_prb_samples(rng, 8, amplitude)
    )
    from repro.fronthaul.ecpri import EAxCId

    return make_packet(
        ru_mac, du_mac,
        UPlaneMessage(direction=Direction.UPLINK,
                      time=time or SymbolTime(0, 0, 0, 5),
                      sections=[section]),
        eaxc=EAxCId(du_port=0, ru_port=port),
    )


def cplane(du_mac, ru_mac, direction=Direction.DOWNLINK):
    return make_packet(
        du_mac, ru_mac,
        CPlaneMessage(direction=direction, time=SymbolTime(0, 0, 0, 0),
                      sections=[CPlaneSection(0, 0, 106)]),
    )


class TestDownlinkFanOut:
    def test_uplane_replicated_to_all_rus(self, das, rng, du_mac, ru_macs):
        result = das.process(dl_uplane(rng, du_mac, ru_macs[0]))
        destinations = [e.packet.eth.dst for e in result.emissions]
        assert destinations == ru_macs

    def test_cplane_replicated_to_all_rus(self, das, du_mac, ru_macs):
        result = das.process(cplane(du_mac, ru_macs[0]))
        assert [e.packet.eth.dst for e in result.emissions] == ru_macs

    def test_replicas_carry_identical_payload(self, das, rng, du_mac, ru_macs):
        packet = dl_uplane(rng, du_mac, ru_macs[0])
        result = das.process(packet)
        payloads = {
            e.packet.message.sections[0].payload for e in result.emissions
        }
        assert len(payloads) == 1

    def test_source_rewritten_to_middlebox(self, das, rng, du_mac, ru_macs):
        result = das.process(dl_uplane(rng, du_mac, ru_macs[0]))
        assert all(e.packet.eth.src == das.mac for e in result.emissions)


class TestUplinkMerge:
    def test_held_until_all_rus_report(self, das, rng, du_mac, ru_macs):
        assert das.process(ul_uplane(rng, ru_macs[0], du_mac)).emissions == []
        assert das.process(ul_uplane(rng, ru_macs[1], du_mac)).emissions == []
        final = das.process(ul_uplane(rng, ru_macs[2], du_mac))
        assert len(final.emissions) == 1
        assert final.emissions[0].packet.eth.dst == du_mac

    def test_merged_payload_is_elementwise_sum(self, das, rng, du_mac, ru_macs):
        packets = [ul_uplane(rng, mac, du_mac) for mac in ru_macs]
        expected = sum(
            p.message.sections[0].iq_samples().astype(int) for p in packets
        )
        emissions = []
        for packet in packets:
            emissions = das.process(packet).emissions
        merged = emissions[0].packet.message.sections[0]
        step = 1 << int(merged.exponents().max())
        assert np.abs(
            merged.iq_samples().astype(int) - expected
        ).max() <= step

    def test_merge_keyed_by_symbol_time(self, das, rng, du_mac, ru_macs):
        """Packets of different symbols never merge together."""
        t_a = SymbolTime(0, 0, 0, 5)
        t_b = SymbolTime(0, 0, 0, 6)
        das.process(ul_uplane(rng, ru_macs[0], du_mac, time=t_a))
        das.process(ul_uplane(rng, ru_macs[1], du_mac, time=t_b))
        assert das.merged_uplink_symbols == 0
        das.process(ul_uplane(rng, ru_macs[1], du_mac, time=t_a))
        das.process(ul_uplane(rng, ru_macs[2], du_mac, time=t_a))
        assert das.merged_uplink_symbols == 1

    def test_merge_keyed_by_antenna_port(self, das, rng, du_mac, ru_macs):
        das.process(ul_uplane(rng, ru_macs[0], du_mac, port=0))
        das.process(ul_uplane(rng, ru_macs[1], du_mac, port=1))
        assert das.merged_uplink_symbols == 0

    def test_duplicate_ru_packet_dropped(self, das, rng, du_mac, ru_macs):
        das.process(ul_uplane(rng, ru_macs[0], du_mac))
        result = das.process(ul_uplane(rng, ru_macs[0], du_mac))
        assert result.emissions == []
        assert das.cache.occupancy(
            (SymbolTime(0, 0, 0, 5), Direction.UPLINK, 0)
        ) == 1

    def test_foreign_uplink_passthrough(self, das, rng, du_mac):
        foreign = ul_uplane(rng, MacAddress.from_int(0x99), du_mac)
        result = das.process(foreign)
        assert len(result.emissions) == 1

    def test_out_of_order_arrival(self, das, rng, du_mac, ru_macs):
        """Arrival order across RUs does not matter."""
        for mac in reversed(ru_macs):
            result = das.process(ul_uplane(rng, mac, du_mac))
        assert len(result.emissions) == 1


class TestManagement:
    def test_add_ru_on_the_fly(self, das, rng, du_mac, ru_macs):
        new_ru = MacAddress.from_int(0x77)
        das.add_ru(new_ru)
        result = das.process(dl_uplane(rng, du_mac, ru_macs[0]))
        assert [e.packet.eth.dst for e in result.emissions] == ru_macs + [new_ru]

    def test_empty_ru_set_rejected(self, du_mac):
        with pytest.raises(ValueError):
            DasMiddlebox(du_mac=du_mac, ru_macs=[])

    def test_management_validator_blocks_empty(self, das):
        from repro.core.management import ValidationError

        with pytest.raises(ValidationError):
            das.management.set("ru_macs", [])
