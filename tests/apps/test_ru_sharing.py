"""RU sharing middlebox unit tests (Section 4.3, Algorithms 2-3)."""

import numpy as np
import pytest

from repro.apps.ru_sharing import RuSharingMiddlebox, SharedDuConfig
from repro.fronthaul.cplane import (
    CPlaneMessage,
    CPlaneSection,
    Direction,
    SectionType,
)
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.packet import make_packet
from repro.fronthaul.spectrum import PrbGrid, split_ru_spectrum
from repro.fronthaul.timing import SymbolTime
from repro.fronthaul.uplane import UPlaneMessage, UPlaneSection

from tests.conftest import random_prb_samples

RU_GRID = PrbGrid(3.46e9, 273)


@pytest.fixture
def ru_mac():
    return MacAddress.from_int(0x41)


@pytest.fixture
def du_configs():
    grid_a, grid_b = split_ru_spectrum(RU_GRID, [106, 106])
    return [
        SharedDuConfig(du_id=1, mac=MacAddress.from_int(0x11), grid=grid_a),
        SharedDuConfig(du_id=2, mac=MacAddress.from_int(0x12), grid=grid_b),
    ]


@pytest.fixture
def sharing(ru_mac, du_configs):
    return RuSharingMiddlebox(ru_mac=ru_mac, ru_grid=RU_GRID, dus=du_configs)


def du_cplane(du, direction=Direction.DOWNLINK, time=None, ru_mac=None):
    message = CPlaneMessage(
        direction=direction,
        time=time or SymbolTime(0, 0, 0, 0),
        sections=[CPlaneSection(section_id=du.du_id, start_prb=0,
                                num_prb=du.grid.num_prb)],
    )
    return make_packet(du.mac, ru_mac or MacAddress.from_int(0x41), message)


def du_dl_uplane(rng, du, time=None, ru_mac=None):
    section = UPlaneSection.from_samples(
        section_id=du.du_id, start_prb=0,
        samples=random_prb_samples(rng, du.grid.num_prb),
    )
    message = UPlaneMessage(
        direction=Direction.DOWNLINK,
        time=time or SymbolTime(0, 0, 0, 0),
        sections=[section],
    )
    return make_packet(du.mac, ru_mac or MacAddress.from_int(0x41), message)


def ru_ul_uplane(rng, ru_mac, time=None):
    section = UPlaneSection.from_samples(
        section_id=0, start_prb=0,
        samples=random_prb_samples(rng, RU_GRID.num_prb),
    )
    message = UPlaneMessage(
        direction=Direction.UPLINK,
        time=time or SymbolTime(0, 0, 0, 10),
        sections=[section],
    )
    return make_packet(ru_mac, MacAddress.from_int(0x99), message)


class TestConstruction:
    def test_duplicate_du_id_rejected(self, ru_mac, du_configs):
        bad = [du_configs[0], SharedDuConfig(du_id=1,
                                             mac=MacAddress.from_int(0x13),
                                             grid=du_configs[1].grid)]
        with pytest.raises(ValueError):
            RuSharingMiddlebox(ru_mac=ru_mac, ru_grid=RU_GRID, dus=bad)

    def test_oversized_du_grid_rejected(self, ru_mac):
        huge = SharedDuConfig(du_id=1, mac=MacAddress.from_int(0x11),
                              grid=PrbGrid(3.46e9, 300))
        with pytest.raises(ValueError):
            RuSharingMiddlebox(ru_mac=ru_mac, ru_grid=RU_GRID, dus=[huge])

    def test_no_dus_rejected(self, ru_mac):
        with pytest.raises(ValueError):
            RuSharingMiddlebox(ru_mac=ru_mac, ru_grid=RU_GRID, dus=[])


class TestCplaneWidening:
    def test_first_cplane_widened_and_forwarded(self, sharing, du_configs,
                                                ru_mac):
        result = sharing.process(du_cplane(du_configs[0]))
        assert len(result.emissions) == 1
        out = result.emissions[0].packet
        assert out.eth.dst == ru_mac
        section = out.message.sections[0]
        assert section.num_prb == RU_GRID.num_prb
        assert section.start_prb == 0

    def test_second_cplane_suppressed(self, sharing, du_configs):
        sharing.process(du_cplane(du_configs[0]))
        result = sharing.process(du_cplane(du_configs[1]))
        assert result.emissions == []

    def test_both_requests_remembered(self, sharing, du_configs):
        sharing.process(du_cplane(du_configs[0]))
        sharing.process(du_cplane(du_configs[1]))
        key = (Direction.DOWNLINK, (0, 0, 0), 0)
        assert sharing._requesting_dus(Direction.DOWNLINK, (0, 0, 0), 0) == [1, 2]

    def test_directions_tracked_separately(self, sharing, du_configs):
        sharing.process(du_cplane(du_configs[0], Direction.DOWNLINK))
        result = sharing.process(du_cplane(du_configs[0], Direction.UPLINK))
        # First UL request for the symbol: forwarded (widened), not dropped.
        assert len(result.emissions) == 1

    def test_unknown_du_passthrough(self, sharing, rng):
        foreign = du_cplane(
            SharedDuConfig(du_id=9, mac=MacAddress.from_int(0x99),
                           grid=PrbGrid(3.43e9, 106))
        )
        result = sharing.process(foreign)
        assert len(result.emissions) == 1
        assert result.emissions[0].packet.message.sections[0].num_prb == 106


class TestDownlinkMultiplex:
    def test_held_until_all_requesting_dus_deliver(self, sharing, rng,
                                                   du_configs):
        sharing.process(du_cplane(du_configs[0]))
        sharing.process(du_cplane(du_configs[1]))
        assert sharing.process(du_dl_uplane(rng, du_configs[0])).emissions == []
        result = sharing.process(du_dl_uplane(rng, du_configs[1]))
        assert len(result.emissions) == 1

    def test_multiplexed_prbs_land_at_offsets(self, sharing, rng, du_configs,
                                              ru_mac):
        sharing.process(du_cplane(du_configs[0]))
        sharing.process(du_cplane(du_configs[1]))
        pkt_a = du_dl_uplane(rng, du_configs[0])
        pkt_b = du_dl_uplane(rng, du_configs[1])
        sharing.process(pkt_a)
        merged = sharing.process(pkt_b).emissions[0].packet
        assert merged.eth.dst == ru_mac
        section = merged.message.sections[0]
        assert section.num_prb == RU_GRID.num_prb
        # DU A at offset 0, DU B at offset 106 (aligned byte copies).
        assert section.prb_payload(0) == pkt_a.message.sections[0].prb_payload(0)
        assert section.prb_payload(105) == pkt_a.message.sections[0].prb_payload(105)
        assert section.prb_payload(106) == pkt_b.message.sections[0].prb_payload(0)
        assert section.prb_payload(211) == pkt_b.message.sections[0].prb_payload(105)

    def test_single_du_multiplexes_alone(self, sharing, rng, du_configs):
        """A DU with no contemporaries still reaches the RU."""
        sharing.process(du_cplane(du_configs[0]))
        result = sharing.process(du_dl_uplane(rng, du_configs[0]))
        assert len(result.emissions) == 1

    def test_aligned_copies_counted(self, sharing, rng, du_configs):
        sharing.process(du_cplane(du_configs[0]))
        sharing.process(du_dl_uplane(rng, du_configs[0]))
        assert sharing.aligned_copies > 0
        assert sharing.misaligned_copies == 0


class TestUplinkDemultiplex:
    def setup_ul(self, sharing, du_configs, time):
        for du in du_configs:
            sharing.process(du_cplane(du, Direction.UPLINK, time=time))

    def test_each_du_gets_its_slice(self, sharing, rng, du_configs, ru_mac):
        time = SymbolTime(0, 0, 0, 10)
        self.setup_ul(sharing, du_configs, time)
        ru_packet = ru_ul_uplane(rng, ru_mac, time=time)
        full = ru_packet.message.sections[0]
        result = sharing.process(ru_packet)
        assert len(result.emissions) == 2
        by_dst = {e.packet.eth.dst.to_int(): e.packet for e in result.emissions}
        for du, offset in zip(du_configs, (0, 106)):
            out = by_dst[du.mac.to_int()]
            section = out.message.sections[0]
            assert section.num_prb == du.grid.num_prb
            assert section.start_prb == 0
            assert section.prb_payload(0) == full.prb_payload(offset)
            assert section.prb_payload(105) == full.prb_payload(offset + 105)

    def test_only_requesting_dus_served(self, sharing, rng, du_configs,
                                        ru_mac):
        time = SymbolTime(0, 0, 0, 10)
        sharing.process(du_cplane(du_configs[0], Direction.UPLINK, time=time))
        result = sharing.process(ru_ul_uplane(rng, ru_mac, time=time))
        assert len(result.emissions) == 1
        assert result.emissions[0].packet.eth.dst == du_configs[0].mac

    def test_unrequested_uplink_dropped(self, sharing, rng, ru_mac):
        result = sharing.process(ru_ul_uplane(rng, ru_mac))
        assert result.emissions == []


class TestMisalignedSharing:
    @pytest.fixture
    def misaligned(self, ru_mac):
        grid_a = split_ru_spectrum(RU_GRID, [106])[0]
        shifted = PrbGrid(
            grid_a.center_frequency_hz + 0.5 * 12 * 30_000, 106
        )  # half-PRB misalignment (Figure 6 right)
        du = SharedDuConfig(du_id=1, mac=MacAddress.from_int(0x11),
                            grid=shifted)
        return RuSharingMiddlebox(ru_mac=ru_mac, ru_grid=RU_GRID, dus=[du]), du

    def test_misaligned_copy_path_taken(self, misaligned, rng):
        sharing, du = misaligned
        sharing.process(du_cplane(du))
        result = sharing.process(du_dl_uplane(rng, du))
        assert len(result.emissions) == 1
        assert sharing.misaligned_copies > 0
        assert sharing.aligned_copies == 0

    def test_misaligned_samples_land_at_subcarrier_offset(self, misaligned,
                                                          rng):
        sharing, du = misaligned
        sharing.process(du_cplane(du))
        pkt = du_dl_uplane(rng, du)
        src_samples = pkt.message.sections[0].iq_samples()
        merged = sharing.process(pkt).emissions[0].packet
        out = merged.message.sections[0].iq_samples()
        offset_sc = int(round(RU_GRID.offset_of(du.grid) * 12))
        flat_out = out.reshape(-1, 2)
        flat_src = src_samples.reshape(-1, 2)
        # Compare a mid-band subcarrier (tolerate recompression error).
        index = 600
        np.testing.assert_allclose(
            flat_out[offset_sc + index], flat_src[index], atol=64
        )


class TestPrach:
    def prach_cplane(self, du, time=None):
        message = CPlaneMessage(
            direction=Direction.UPLINK,
            time=time or SymbolTime(0, 0, 0, 10),
            sections=[
                CPlaneSection(section_id=0, start_prb=0, num_prb=12,
                              num_symbols=4, freq_offset=144)
            ],
            section_type=SectionType.PRACH,
            filter_index=1,
        )
        return make_packet(du.mac, MacAddress.from_int(0x41), message)

    def test_combined_after_all_dus(self, sharing, du_configs, ru_mac):
        held = sharing.process(self.prach_cplane(du_configs[0]))
        assert held.emissions == []
        result = sharing.process(self.prach_cplane(du_configs[1]))
        assert len(result.emissions) == 1
        out = result.emissions[0].packet
        assert out.eth.dst == ru_mac
        assert out.message.section_type is SectionType.PRACH
        assert len(out.message.sections) == 2
        assert [s.section_id for s in out.message.sections] == [1, 2]

    def test_freq_offsets_translated(self, sharing, du_configs):
        from repro.fronthaul.prach import translate_freq_offset

        sharing.process(self.prach_cplane(du_configs[0]))
        result = sharing.process(self.prach_cplane(du_configs[1]))
        sections = result.emissions[0].packet.message.sections
        for du, section in zip(du_configs, sections):
            assert section.freq_offset == translate_freq_offset(
                144, du.grid.center_frequency_hz, RU_GRID.center_frequency_hz,
                30_000,
            )

    def test_prach_uplink_demuxed_by_section_id(self, sharing, rng,
                                                du_configs, ru_mac):
        sections = [
            UPlaneSection.from_samples(
                section_id=du.du_id, start_prb=0,
                samples=random_prb_samples(rng, 12),
            )
            for du in du_configs
        ]
        message = UPlaneMessage(
            direction=Direction.UPLINK,
            time=SymbolTime(0, 0, 0, 10),
            sections=sections,
            filter_index=1,
        )
        packet = make_packet(ru_mac, MacAddress.from_int(0x99), message)
        result = sharing.process(packet)
        assert len(result.emissions) == 2
        for emission, du, section in zip(result.emissions, du_configs,
                                         sections):
            assert emission.packet.eth.dst == du.mac
            assert emission.packet.message.sections[0].payload == section.payload
            assert emission.packet.message.filter_index == 1

    def test_unknown_section_ids_dropped(self, sharing, rng, ru_mac):
        message = UPlaneMessage(
            direction=Direction.UPLINK,
            time=SymbolTime(0, 0, 0, 10),
            sections=[
                UPlaneSection.from_samples(
                    section_id=99, start_prb=0,
                    samples=random_prb_samples(rng, 12),
                )
            ],
            filter_index=1,
        )
        packet = make_packet(ru_mac, MacAddress.from_int(0x99), message)
        assert sharing.process(packet).emissions == []


class TestHousekeeping:
    def test_flush_slots_before(self, sharing, rng, du_configs):
        old = SymbolTime(0, 0, 0, 0)
        new = SymbolTime(0, 1, 0, 0)
        sharing.process(du_cplane(du_configs[0], time=old))
        sharing.process(du_cplane(du_configs[0], time=new))
        sharing.flush_slots_before(new.slot_key())
        assert sharing._requesting_dus(Direction.DOWNLINK, old.slot_key(), 0) == []
        assert sharing._requesting_dus(Direction.DOWNLINK, new.slot_key(), 0) == [1]
