"""Property-based tests of middlebox invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.das import DasMiddlebox
from repro.apps.dmimo import DmimoMiddlebox, RuPortMap
from repro.fronthaul.cplane import Direction
from repro.fronthaul.ecpri import EAxCId
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.packet import make_packet
from repro.fronthaul.timing import SymbolTime
from repro.fronthaul.uplane import UPlaneMessage, UPlaneSection

DU_MAC = MacAddress.from_int(0x01)


def ul_packet(seed, src, time, port, n_prbs=4):
    rng = np.random.default_rng(seed)
    samples = rng.integers(-8000, 8000, size=(n_prbs, 24)).astype(np.int16)
    section = UPlaneSection.from_samples(0, 0, samples)
    return make_packet(
        src, DU_MAC,
        UPlaneMessage(direction=Direction.UPLINK, time=time,
                      sections=[section]),
        eaxc=EAxCId(du_port=0, ru_port=port),
    )


@st.composite
def das_arrival_orders(draw):
    n_rus = draw(st.integers(min_value=2, max_value=4))
    n_symbols = draw(st.integers(min_value=1, max_value=3))
    arrivals = [
        (ru, symbol)
        for ru in range(n_rus)
        for symbol in range(n_symbols)
    ]
    return n_rus, n_symbols, draw(st.permutations(arrivals))


@settings(max_examples=50, deadline=None)
@given(das_arrival_orders())
def test_das_merges_exactly_once_per_symbol_any_order(case):
    """Whatever the interleaving of RU arrivals across symbols, every
    symbol merges exactly once and the merged payload is order-invariant."""
    n_rus, n_symbols, order = case
    ru_macs = [MacAddress.from_int(0x20 + i) for i in range(n_rus)]
    das = DasMiddlebox(du_mac=DU_MAC, ru_macs=ru_macs)
    merged_payloads = {}
    for ru_index, symbol in order:
        time = SymbolTime(0, 0, 0, symbol)
        packet = ul_packet(seed=ru_index * 100 + symbol,
                           src=ru_macs[ru_index], time=time, port=0)
        result = das.process(packet)
        for emission in result.emissions:
            key = emission.packet.time
            assert key not in merged_payloads, "double merge"
            merged_payloads[key] = emission.packet.message.sections[0].payload
    assert len(merged_payloads) == n_symbols
    assert das.merged_uplink_symbols == n_symbols
    assert len(das.cache) == 0
    # Order invariance: re-run in sorted order, payloads must match.
    das2 = DasMiddlebox(du_mac=DU_MAC, ru_macs=ru_macs)
    for ru_index, symbol in sorted(order):
        time = SymbolTime(0, 0, 0, symbol)
        result = das2.process(ul_packet(seed=ru_index * 100 + symbol,
                                        src=ru_macs[ru_index], time=time,
                                        port=0))
        for emission in result.emissions:
            key = emission.packet.time
            assert (
                emission.packet.message.sections[0].payload
                == merged_payloads[key]
            )
    assert das.merged_uplink_symbols == das2.merged_uplink_symbols


@settings(max_examples=50, deadline=None)
@given(
    groups=st.lists(st.integers(min_value=1, max_value=4), min_size=1,
                    max_size=4),
)
def test_dmimo_port_map_is_bijection(groups):
    """Any RU/antenna composition yields a bijective global<->local map."""
    macs = [MacAddress.from_int(0x30 + i) for i in range(len(groups))]
    port_map = RuPortMap(groups=tuple(zip(macs, groups)))
    seen = set()
    for global_port in range(port_map.total_ports):
        mac, local = port_map.to_local(global_port)
        assert (mac.to_int(), local) not in seen
        seen.add((mac.to_int(), local))
        assert port_map.to_global(mac, local) == global_port
    assert len(seen) == sum(groups)


@settings(max_examples=30, deadline=None)
@given(
    groups=st.lists(st.integers(min_value=1, max_value=3), min_size=2,
                    max_size=3),
    ports=st.data(),
)
def test_dmimo_roundtrip_identity_on_wire(groups, ports):
    """DL remap followed by UL remap restores the global port, for any
    composition and any port."""
    macs = [MacAddress.from_int(0x30 + i) for i in range(len(groups))]
    port_map = RuPortMap(groups=tuple(zip(macs, groups)))
    dmimo = DmimoMiddlebox(du_mac=DU_MAC, port_map=port_map)
    global_port = ports.draw(
        st.integers(min_value=0, max_value=port_map.total_ports - 1)
    )
    dl = make_packet(
        DU_MAC, MacAddress.from_int(0xFF),
        UPlaneMessage(
            direction=Direction.DOWNLINK,
            time=SymbolTime(0, 0, 0, 1),
            sections=[
                UPlaneSection.from_samples(
                    0, 0, np.zeros((2, 24), dtype=np.int16)
                )
            ],
        ),
        eaxc=EAxCId(du_port=0, ru_port=global_port),
    )
    out = dmimo.process(dl).emissions[0].packet
    ul = make_packet(
        out.eth.dst, DU_MAC,
        UPlaneMessage(
            direction=Direction.UPLINK,
            time=SymbolTime(0, 0, 0, 10),
            sections=[
                UPlaneSection.from_samples(
                    0, 0, np.zeros((2, 24), dtype=np.int16)
                )
            ],
        ),
        eaxc=EAxCId(du_port=0, ru_port=out.eaxc.ru_port),
    )
    back = dmimo.process(ul).emissions[0].packet
    assert back.eaxc.ru_port == global_port
    assert back.eth.dst == DU_MAC
