"""PRB monitoring middlebox unit tests (Section 4.4, Algorithm 1)."""

import numpy as np
import pytest

from repro.apps.prb_monitor import TELEMETRY_TOPIC, PrbMonitorMiddlebox
from repro.fronthaul.cplane import Direction
from repro.fronthaul.ecpri import EAxCId
from repro.fronthaul.packet import make_packet
from repro.fronthaul.timing import SymbolTime
from repro.fronthaul.uplane import UPlaneMessage, UPlaneSection

N_PRB = 20


@pytest.fixture
def monitor():
    return PrbMonitorMiddlebox(carrier_num_prb=N_PRB)


def grid_packet(rng, du_mac, ru_mac, used_prbs, direction=Direction.DOWNLINK,
                time=None, port=0, amplitude=8000):
    """A full-band packet with data on ``used_prbs``, idle noise elsewhere."""
    samples = rng.integers(-3, 3, size=(N_PRB, 24)).astype(np.int16)
    for prb in used_prbs:
        samples[prb] = rng.integers(-amplitude, amplitude, 24)
    section = UPlaneSection.from_samples(0, 0, samples)
    message = UPlaneMessage(
        direction=direction,
        time=time or SymbolTime(0, 0, 0, 0),
        sections=[section],
    )
    return make_packet(du_mac, ru_mac, message,
                       eaxc=EAxCId(du_port=0, ru_port=port))


class TestAlgorithm1:
    def test_detects_used_prbs_exactly(self, monitor, rng, du_mac, ru_mac):
        used = {2, 5, 11, 19}
        monitor.process(grid_packet(rng, du_mac, ru_mac, used))
        estimate = monitor.estimates[0]
        assert {i for i, flag in enumerate(estimate.utilized) if flag} == used

    def test_idle_grid_zero_utilization(self, monitor, rng, du_mac, ru_mac):
        monitor.process(grid_packet(rng, du_mac, ru_mac, set()))
        assert monitor.estimates[0].utilization == 0.0

    def test_full_grid_full_utilization(self, monitor, rng, du_mac, ru_mac):
        monitor.process(grid_packet(rng, du_mac, ru_mac, set(range(N_PRB))))
        assert monitor.estimates[0].utilization == 1.0

    def test_uplink_threshold_tolerates_noise(self, monitor, rng, du_mac,
                                              ru_mac):
        """UL noise floors produce small exponents; thr_ul=2 masks them."""
        samples = rng.integers(-800, 800, size=(N_PRB, 24)).astype(np.int16)
        samples[7] = rng.integers(-8000, 8000, 24)
        section = UPlaneSection.from_samples(0, 0, samples)
        message = UPlaneMessage(direction=Direction.UPLINK,
                                time=SymbolTime(0, 0, 0, 10),
                                sections=[section])
        monitor.process(make_packet(ru_mac, du_mac, message))
        estimate = monitor.estimates[0]
        assert estimate.utilized[7]
        assert sum(estimate.utilized) == 1

    def test_threshold_configurable_via_management(self, monitor, rng, du_mac,
                                                   ru_mac):
        monitor.management.set("thr_dl", 15)
        monitor.process(grid_packet(rng, du_mac, ru_mac, {1, 2, 3}))
        assert monitor.estimates[0].utilization == 0.0

    def test_packets_forwarded_unmodified(self, monitor, rng, du_mac, ru_mac):
        packet = grid_packet(rng, du_mac, ru_mac, {0})
        wire = packet.pack()
        result = monitor.process(packet)
        assert len(result.emissions) == 1
        assert result.emissions[0].packet.pack() == wire

    def test_only_monitored_port_estimated(self, monitor, rng, du_mac, ru_mac):
        monitor.process(grid_packet(rng, du_mac, ru_mac, {1}, port=1))
        assert monitor.estimates == []
        monitor.process(grid_packet(rng, du_mac, ru_mac, {1}, port=0))
        assert len(monitor.estimates) == 1

    def test_prach_packets_skipped(self, monitor, rng, du_mac, ru_mac):
        packet = grid_packet(rng, du_mac, ru_mac, {1})
        packet.message.filter_index = 1
        monitor.process(packet)
        assert monitor.estimates == []

    def test_cplane_forwarded_without_estimate(self, monitor, du_mac, ru_mac):
        from repro.fronthaul.cplane import CPlaneMessage, CPlaneSection

        message = CPlaneMessage(
            direction=Direction.DOWNLINK,
            time=SymbolTime(0, 0, 0, 0),
            sections=[CPlaneSection(0, 0, N_PRB)],
        )
        result = monitor.process(make_packet(du_mac, ru_mac, message))
        assert len(result.emissions) == 1
        assert monitor.estimates == []


class TestAggregation:
    def test_average_utilization_per_direction(self, monitor, rng, du_mac,
                                               ru_mac):
        monitor.process(grid_packet(rng, du_mac, ru_mac, set(range(10))))
        monitor.process(grid_packet(rng, du_mac, ru_mac, set()))
        assert monitor.average_utilization(Direction.DOWNLINK) == pytest.approx(
            0.25
        )
        assert monitor.average_utilization(Direction.UPLINK) == 0.0

    def test_timeseries_windows(self, monitor, rng, du_mac, ru_mac):
        for i in range(8):
            used = set(range(N_PRB)) if i < 4 else set()
            monitor.process(
                grid_packet(rng, du_mac, ru_mac, used,
                            time=SymbolTime(0, 0, 0, i))
            )
        series = monitor.utilization_timeseries(Direction.DOWNLINK,
                                                window_symbols=4)
        assert series == [pytest.approx(1.0), pytest.approx(0.0)]

    def test_reset(self, monitor, rng, du_mac, ru_mac):
        monitor.process(grid_packet(rng, du_mac, ru_mac, {1}))
        monitor.reset()
        assert monitor.estimates == []
        assert monitor.average_utilization() == 0.0


class TestTelemetry:
    def test_estimates_published(self, monitor, rng, du_mac, ru_mac):
        seen = []
        monitor.telemetry.subscribe(TELEMETRY_TOPIC,
                                    lambda record: seen.append(record))
        monitor.process(grid_packet(rng, du_mac, ru_mac, {3}))
        assert len(seen) == 1
        assert seen[0].payload.utilized[3]
        assert seen[0].source == monitor.name

    def test_timestamps_sub_millisecond(self, monitor, rng, du_mac, ru_mac):
        """Section 4.4: sub-millisecond granularity — consecutive symbol
        estimates are ~35.7 us apart."""
        monitor.process(grid_packet(rng, du_mac, ru_mac, {1},
                                    time=SymbolTime(0, 0, 0, 0)))
        monitor.process(grid_packet(rng, du_mac, ru_mac, {1},
                                    time=SymbolTime(0, 0, 0, 1)))
        history = monitor.telemetry.history(TELEMETRY_TOPIC)
        delta = history[1].timestamp_ns - history[0].timestamp_ns
        assert 30_000 < delta < 40_000
