"""Spectrum sensor tests (Section 8.1 sensing use case)."""

import numpy as np
import pytest

from repro.apps.sensing import TELEMETRY_TOPIC, SpectrumSensorMiddlebox
from repro.fronthaul.cplane import CPlaneMessage, CPlaneSection, Direction
from repro.fronthaul.packet import make_packet
from repro.fronthaul.timing import SymbolTime
from repro.fronthaul.uplane import UPlaneMessage, UPlaneSection

N_PRB = 30


@pytest.fixture
def sensor():
    return SpectrumSensorMiddlebox(carrier_num_prb=N_PRB)


def ul_cplane(du_mac, ru_mac, start_prb, num_prb, time=None):
    return make_packet(
        du_mac, ru_mac,
        CPlaneMessage(
            direction=Direction.UPLINK,
            time=time or SymbolTime(0, 0, 0, 10),
            sections=[CPlaneSection(0, start_prb, num_prb)],
        ),
    )


def ul_uplane(rng, ru_mac, du_mac, hot_prbs, time=None, amplitude=9000):
    samples = rng.integers(-3, 3, size=(N_PRB, 24)).astype(np.int16)
    for prb in hot_prbs:
        samples[prb] = rng.integers(-amplitude, amplitude, 24)
    section = UPlaneSection.from_samples(0, 0, samples)
    return make_packet(
        ru_mac, du_mac,
        UPlaneMessage(direction=Direction.UPLINK,
                      time=time or SymbolTime(0, 0, 0, 10),
                      sections=[section]),
    )


class TestInterferenceDetection:
    def test_scheduled_energy_is_clean(self, sensor, rng, du_mac, ru_mac):
        sensor.process(ul_cplane(du_mac, ru_mac, 5, 10))
        sensor.process(ul_uplane(rng, ru_mac, du_mac, hot_prbs=range(5, 15)))
        assert sensor.alerts == []

    def test_unscheduled_energy_flagged(self, sensor, rng, du_mac, ru_mac):
        sensor.process(ul_cplane(du_mac, ru_mac, 5, 10))
        sensor.process(
            ul_uplane(rng, ru_mac, du_mac, hot_prbs=[20, 21, 22])
        )
        assert len(sensor.alerts) == 1
        alert = sensor.alerts[0]
        assert alert.prbs == (20, 21, 22)
        assert alert.max_exponent > 2

    def test_no_schedule_all_energy_is_interference(self, sensor, rng,
                                                    du_mac, ru_mac):
        """A jammer on an idle cell lights up unscheduled PRBs."""
        sensor.process(ul_uplane(rng, ru_mac, du_mac, hot_prbs=[0, 1]))
        assert sensor.alerts
        assert sensor.alerts[0].prbs == (0, 1)

    def test_noise_floor_ignored(self, sensor, rng, du_mac, ru_mac):
        sensor.process(ul_uplane(rng, ru_mac, du_mac, hot_prbs=[]))
        assert sensor.alerts == []

    def test_mixed_scheduled_and_jammed(self, sensor, rng, du_mac, ru_mac):
        sensor.process(ul_cplane(du_mac, ru_mac, 0, 10))
        sensor.process(
            ul_uplane(rng, ru_mac, du_mac,
                      hot_prbs=list(range(0, 10)) + [25])
        )
        assert sensor.alerts[0].prbs == (25,)

    def test_schedule_keyed_per_slot(self, sensor, rng, du_mac, ru_mac):
        """Last slot's grant does not whitelist this slot's energy."""
        sensor.process(ul_cplane(du_mac, ru_mac, 20, 5,
                                 time=SymbolTime(0, 0, 0, 10)))
        sensor.process(
            ul_uplane(rng, ru_mac, du_mac, hot_prbs=[21],
                      time=SymbolTime(0, 0, 1, 10))
        )
        assert sensor.alerts  # grant was for the previous slot

    def test_packets_forwarded_transparently(self, sensor, rng, du_mac,
                                             ru_mac):
        packet = ul_uplane(rng, ru_mac, du_mac, hot_prbs=[20])
        wire = packet.pack()
        result = sensor.process(packet)
        assert len(result.emissions) == 1
        assert result.emissions[0].packet.pack() == wire

    def test_threshold_configurable(self, sensor, rng, du_mac, ru_mac):
        sensor.management.set("noise_exponent_threshold", 15)
        sensor.process(ul_uplane(rng, ru_mac, du_mac, hot_prbs=[20]))
        assert sensor.alerts == []

    def test_telemetry_published(self, sensor, rng, du_mac, ru_mac):
        seen = []
        sensor.telemetry.subscribe(TELEMETRY_TOPIC, seen.append)
        sensor.process(ul_uplane(rng, ru_mac, du_mac, hot_prbs=[7]))
        assert len(seen) == 1
        assert seen[0].payload.prbs == (7,)

    def test_flush_bounds_state(self, sensor, du_mac, ru_mac):
        sensor.process(ul_cplane(du_mac, ru_mac, 0, 10,
                                 time=SymbolTime(0, 0, 0, 10)))
        sensor.process(ul_cplane(du_mac, ru_mac, 0, 10,
                                 time=SymbolTime(0, 5, 0, 10)))
        sensor.flush_slots_before((0, 5, 0))
        assert list(sensor._scheduled) == [((0, 5, 0), 0)]

    def test_kernel_placement(self, sensor, rng, du_mac, ru_mac):
        sensor.process(ul_uplane(rng, ru_mac, du_mac, hot_prbs=[20]))
        assert not any(t.needs_userspace() for t in sensor.traces)
