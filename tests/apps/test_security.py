"""Fronthaul guard tests (Section 8.1 security use case)."""

import pytest

from repro.apps.security import TELEMETRY_TOPIC, FronthaulGuardMiddlebox
from repro.fronthaul.cplane import CPlaneMessage, CPlaneSection, Direction
from repro.fronthaul.ecpri import EAxCId
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.packet import make_packet
from repro.fronthaul.timing import Numerology, SymbolTime


@pytest.fixture
def guard(du_mac, ru_mac):
    return FronthaulGuardMiddlebox(allowed_sources=[du_mac, ru_mac])


def frame(src, dst, seq_id=0, slot=0, port=0):
    time = SymbolTime.from_absolute_slot(slot, Numerology(mu=1))
    return make_packet(
        src, dst,
        CPlaneMessage(direction=Direction.DOWNLINK, time=time,
                      sections=[CPlaneSection(0, 0, 106)]),
        seq_id=seq_id,
        eaxc=EAxCId(du_port=0, ru_port=port),
    )


class TestAllowList:
    def test_known_source_passes(self, guard, du_mac, ru_mac):
        result = guard.process(frame(du_mac, ru_mac))
        assert len(result.emissions) == 1
        assert guard.alerts == []

    def test_unknown_source_dropped(self, guard, ru_mac):
        attacker = MacAddress.from_int(0xBAD)
        result = guard.process(frame(attacker, ru_mac))
        assert result.emissions == []
        assert guard.alerts[0].reason == "unknown_source"

    def test_source_can_be_provisioned(self, guard, ru_mac):
        newcomer = MacAddress.from_int(0x77)
        guard.allow_source(newcomer)
        assert guard.process(frame(newcomer, ru_mac)).emissions

    def test_empty_allowlist_rejected(self):
        with pytest.raises(ValueError):
            FronthaulGuardMiddlebox(allowed_sources=[])


class TestSequenceChecks:
    def test_monotonic_sequence_passes(self, guard, du_mac, ru_mac):
        for seq in range(5):
            result = guard.process(frame(du_mac, ru_mac, seq_id=seq,
                                         slot=seq))
            assert result.emissions
        assert guard.alerts == []

    def test_replay_dropped(self, guard, du_mac, ru_mac):
        guard.process(frame(du_mac, ru_mac, seq_id=7, slot=0))
        result = guard.process(frame(du_mac, ru_mac, seq_id=7, slot=0))
        assert result.emissions == []
        assert guard.alerts[0].reason == "replayed_sequence"

    def test_regression_dropped(self, guard, du_mac, ru_mac):
        guard.process(frame(du_mac, ru_mac, seq_id=10, slot=0))
        result = guard.process(frame(du_mac, ru_mac, seq_id=5, slot=0))
        assert result.emissions == []
        assert guard.alerts[0].reason == "regressed_sequence"

    def test_wraparound_is_legitimate(self, guard, du_mac, ru_mac):
        guard.process(frame(du_mac, ru_mac, seq_id=255, slot=0))
        result = guard.process(frame(du_mac, ru_mac, seq_id=0, slot=0))
        assert result.emissions
        assert guard.alerts == []

    def test_flows_tracked_independently(self, guard, du_mac, ru_mac):
        guard.process(frame(du_mac, ru_mac, seq_id=9, port=0))
        # Same seq id on a different eAxC flow is fine.
        result = guard.process(frame(du_mac, ru_mac, seq_id=9, port=1))
        assert result.emissions
        assert guard.alerts == []


class TestTimingWindow:
    def test_stale_timestamp_dropped(self, guard, du_mac, ru_mac):
        guard.process(frame(du_mac, ru_mac, seq_id=0, slot=100))
        result = guard.process(frame(du_mac, ru_mac, seq_id=1, slot=50))
        assert result.emissions == []
        assert guard.alerts[0].reason == "timing_window"

    def test_small_skew_tolerated(self, guard, du_mac, ru_mac):
        guard.process(frame(du_mac, ru_mac, seq_id=0, slot=100))
        result = guard.process(frame(du_mac, ru_mac, seq_id=1, slot=104))
        assert result.emissions

    def test_attack_storm_all_dropped(self, guard, du_mac, ru_mac):
        """A replayed-capture flood is filtered packet by packet."""
        original = frame(du_mac, ru_mac, seq_id=3, slot=10)
        guard.process(original)
        for _ in range(20):
            replay = frame(du_mac, ru_mac, seq_id=3, slot=10)
            assert guard.process(replay).emissions == []
        assert len(guard.alerts) == 20
        assert guard.stats.dropped_packets == 20

    def test_telemetry_alerts(self, guard, du_mac, ru_mac):
        seen = []
        guard.telemetry.subscribe(TELEMETRY_TOPIC, seen.append)
        guard.process(frame(MacAddress.from_int(0xBAD), ru_mac))
        assert len(seen) == 1
        assert seen[0].payload.reason == "unknown_source"
