"""Table 1: kernel vs userspace packet processing per application.

The XDP implementations place DAS and RU sharing in userspace (IQ work)
and dMIMO and PRB monitoring in the kernel (header work only).  We assert
both the declared design placement and that the *measured* action traces
of each app's data path agree with it.
"""


from repro.apps.das import DasMiddlebox
from repro.apps.dmimo import DmimoMiddlebox, RuPortMap
from repro.apps.prb_monitor import PrbMonitorMiddlebox
from repro.apps.ru_sharing import RuSharingMiddlebox, SharedDuConfig
from repro.core.actions import ExecLocation
from repro.fronthaul.cplane import Direction
from repro.fronthaul.ecpri import EAxCId
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.packet import make_packet
from repro.fronthaul.spectrum import PrbGrid, split_ru_spectrum
from repro.fronthaul.timing import SymbolTime
from repro.fronthaul.uplane import UPlaneMessage, UPlaneSection

from tests.conftest import random_prb_samples


class TestDeclaredPlacement:
    """Table 1 as declared by each application class."""

    def test_das_userspace(self):
        assert DasMiddlebox.nominal_xdp_location is ExecLocation.USERSPACE

    def test_dmimo_kernel(self):
        assert DmimoMiddlebox.nominal_xdp_location is ExecLocation.KERNEL

    def test_ru_sharing_userspace(self):
        assert RuSharingMiddlebox.nominal_xdp_location is ExecLocation.USERSPACE

    def test_prb_monitor_kernel(self):
        assert PrbMonitorMiddlebox.nominal_xdp_location is ExecLocation.KERNEL


class TestMeasuredPlacement:
    """The action traces of each app's uplink data path match Table 1."""

    def test_das_uplink_needs_userspace(self, rng, du_mac):
        rus = [MacAddress.from_int(0x20 + i) for i in range(2)]
        das = DasMiddlebox(du_mac=du_mac, ru_macs=rus)
        for mac in rus:
            section = UPlaneSection.from_samples(
                0, 0, random_prb_samples(rng, 4)
            )
            packet = make_packet(
                mac, du_mac,
                UPlaneMessage(direction=Direction.UPLINK,
                              time=SymbolTime(0, 0, 0, 5),
                              sections=[section]),
            )
            das.process(packet)
        assert any(trace.needs_userspace() for trace in das.traces)

    def test_dmimo_data_path_stays_in_kernel(self, rng, du_mac):
        ru = MacAddress.from_int(0x31)
        dmimo = DmimoMiddlebox(
            du_mac=du_mac, port_map=RuPortMap(groups=((ru, 2),))
        )
        section = UPlaneSection.from_samples(0, 0, random_prb_samples(rng, 4))
        packet = make_packet(
            du_mac, MacAddress.from_int(0xFF),
            UPlaneMessage(direction=Direction.DOWNLINK,
                          time=SymbolTime(0, 0, 0, 1), sections=[section]),
            eaxc=EAxCId(du_port=0, ru_port=1),
        )
        dmimo.process(packet)
        assert not any(trace.needs_userspace() for trace in dmimo.traces)

    def test_monitor_stays_in_kernel(self, rng, du_mac, ru_mac):
        monitor = PrbMonitorMiddlebox(carrier_num_prb=8)
        section = UPlaneSection.from_samples(0, 0, random_prb_samples(rng, 8))
        packet = make_packet(
            du_mac, ru_mac,
            UPlaneMessage(direction=Direction.DOWNLINK,
                          time=SymbolTime(0, 0, 0, 0), sections=[section]),
        )
        monitor.process(packet)
        assert not any(trace.needs_userspace() for trace in monitor.traces)

    def test_sharing_uplink_needs_userspace(self, rng):
        ru_grid = PrbGrid(3.46e9, 273)
        grid = split_ru_spectrum(ru_grid, [106])[0]
        du = SharedDuConfig(du_id=1, mac=MacAddress.from_int(0x11), grid=grid)
        sharing = RuSharingMiddlebox(
            ru_mac=MacAddress.from_int(0x41), ru_grid=ru_grid, dus=[du]
        )
        from repro.fronthaul.cplane import CPlaneMessage, CPlaneSection

        time = SymbolTime(0, 0, 0, 10)
        cplane = make_packet(
            du.mac, sharing.ru_mac,
            CPlaneMessage(direction=Direction.UPLINK, time=time,
                          sections=[CPlaneSection(0, 0, 106)]),
        )
        sharing.process(cplane)
        section = UPlaneSection.from_samples(
            0, 0, random_prb_samples(rng, 273)
        )
        uplink = make_packet(
            sharing.ru_mac, du.mac,
            UPlaneMessage(direction=Direction.UPLINK, time=time,
                          sections=[section]),
        )
        sharing.process(uplink)
        assert any(trace.needs_userspace() for trace in sharing.traces)
