"""Per-port accounting and loop-guard coverage for the embedded switch.

The core chain tests exercise delivery semantics; these pin down the
accounting surface the observability layer reads: per-port tx/rx byte
and packet counters, dropped-frame counts, and the metric mirrors kept
in the registry when a :class:`~repro.obs.Observability` is armed.
"""

import pytest

from repro.core.chain import FronthaulSwitch, PortRole, SwitchLoopError
from repro.fronthaul.cplane import CPlaneMessage, CPlaneSection, Direction
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.packet import make_packet
from repro.fronthaul.timing import SymbolTime
from repro.obs import Observability


def packet(src, dst):
    return make_packet(
        src, dst,
        CPlaneMessage(
            direction=Direction.DOWNLINK,
            time=SymbolTime(0, 0, 0, 0),
            sections=[CPlaneSection(0, 0, 50)],
        ),
    )


@pytest.fixture
def fabric():
    switch = FronthaulSwitch(name="fab0", obs=Observability(enabled=True))
    du_mac = MacAddress.from_int(1)
    ru_mac = MacAddress.from_int(2)
    du_rx, ru_rx = [], []
    switch.attach("du", PortRole.DU, [du_mac], du_rx.append)
    switch.attach("ru", PortRole.RU, [ru_mac], ru_rx.append)
    return switch, du_mac, ru_mac, du_rx, ru_rx


def _series(switch, metric):
    snap = switch.obs.registry.snapshot()
    return snap[metric]["series"] if metric in snap else {}


class TestPerPortAccounting:
    def test_tx_rx_bytes_and_packets(self, fabric):
        switch, du_mac, ru_mac, _, ru_rx = fabric
        frame = packet(du_mac, ru_mac)
        for _ in range(3):
            switch.inject(packet(du_mac, ru_mac), "du")
        du, ru = switch.port("du"), switch.port("ru")
        assert du.tx_packets == 3 and du.tx_bytes == 3 * frame.wire_size
        assert ru.rx_packets == 3 and ru.rx_bytes == 3 * frame.wire_size
        assert du.rx_bytes == 0 and ru.tx_bytes == 0
        assert len(ru_rx) == 3

    def test_interposed_hop_counts_both_legs(self, fabric):
        switch, du_mac, ru_mac, _, _ = fabric
        box_rx = []
        switch.attach("mb", PortRole.MIDDLEBOX, [], box_rx.append)
        switch.interpose("mb", [ru_mac])
        frame = packet(du_mac, ru_mac)
        switch.inject(frame, "du")
        switch.inject(box_rx[0], "mb")
        mb = switch.port("mb")
        # The middlebox port both receives (DU leg) and transmits (RU leg).
        assert mb.rx_packets == 1 and mb.tx_packets == 1
        assert mb.rx_bytes == frame.wire_size
        assert mb.tx_bytes == frame.wire_size
        assert switch.port("ru").rx_packets == 1

    def test_metric_mirrors_match_port_counters(self, fabric):
        switch, du_mac, ru_mac, _, _ = fabric
        frame = packet(du_mac, ru_mac)
        switch.inject(frame, "du")
        by = _series(switch, "switch_port_bytes_total")
        pk = _series(switch, "switch_port_packets_total")
        assert by["fab0,du,tx"] == frame.wire_size
        assert by["fab0,ru,rx"] == frame.wire_size
        assert pk["fab0,du,tx"] == 1
        assert pk["fab0,ru,rx"] == 1

    def test_unknown_mac_counts_drop(self, fabric):
        switch, du_mac, _, _, _ = fabric
        switch.inject(packet(du_mac, MacAddress.from_int(99)), "du")
        du = switch.port("du")
        assert du.dropped_frames == 1
        # Dropped frames never reach the byte/packet counters.
        assert du.tx_bytes == 0 and du.tx_packets == 0
        drops = _series(switch, "switch_drops_total")
        assert drops["fab0,du"] == 1

    def test_hairpin_to_sender_counts_drop(self, fabric):
        switch, du_mac, _, du_rx, _ = fabric
        switch.inject(packet(du_mac, du_mac), "du")
        assert not du_rx
        assert switch.port("du").dropped_frames == 1

    def test_disabled_obs_keeps_port_counters_only(self):
        switch = FronthaulSwitch()
        du_mac, ru_mac = MacAddress.from_int(1), MacAddress.from_int(2)
        switch.attach("du", PortRole.DU, [du_mac], lambda p: None)
        switch.attach("ru", PortRole.RU, [ru_mac], lambda p: None)
        frame = packet(du_mac, ru_mac)
        switch.inject(frame, "du")
        assert switch.port("du").tx_bytes == frame.wire_size
        assert switch.obs.registry.snapshot() == {}


class TestLoopGuard:
    def test_loop_guard_raises_and_counts(self, fabric):
        switch, du_mac, ru_mac, _, _ = fabric
        switch.attach(
            "loop", PortRole.MIDDLEBOX, [],
            lambda p: switch.inject(p, "du", _hops=99),
        )
        switch.interpose("loop", [ru_mac])
        with pytest.raises(SwitchLoopError):
            switch.inject(packet(du_mac, ru_mac), "du")
        errors = _series(switch, "switch_loop_errors_total")
        assert errors["fab0"] == 1

    def test_reinjection_after_middlebox_is_not_a_loop(self, fabric):
        switch, du_mac, ru_mac, _, ru_rx = fabric
        hops = []

        def relay(p):
            hops.append(p)
            switch.inject(p, "mb0", _hops=len(hops))

        switch.attach("mb0", PortRole.MIDDLEBOX, [], relay)
        switch.interpose("mb0", [ru_mac])
        switch.inject(packet(du_mac, ru_mac), "du")
        assert ru_rx and len(hops) == 1
