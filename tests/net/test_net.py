"""Link, NIC/SR-IOV and switch substrate tests."""

import pytest

from repro.core.chain import PortRole
from repro.fronthaul.cplane import CPlaneMessage, CPlaneSection, Direction
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.packet import make_packet
from repro.fronthaul.timing import SymbolTime
from repro.net.link import Link
from repro.net.nic import Nic, PcieBus
from repro.net.switch import EthernetSwitch, PortSpec


class TestLink:
    def test_serialization_delay(self):
        link = Link("fh", capacity_gbps=100.0, propagation_ns=500.0)
        # 7.7 KB at 100 Gbps ~= 616 ns + 500 ns propagation.
        latency = link.transfer(7_700)
        assert latency == pytest.approx(500.0 + 7_700 * 8 / 100.0)

    def test_utilization_accounting(self):
        link = Link("fh", capacity_gbps=10.0)
        for _ in range(100):
            link.transfer(1_250)  # 10 kb each
        # 1 Mb over 1 ms at 10 Gbps -> 10%.
        assert link.utilization(1e6) == pytest.approx(0.1)

    def test_reset(self):
        link = Link("fh")
        link.transfer(1000)
        link.reset()
        assert link.stats.bytes_carried == 0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            Link("bad", capacity_gbps=0)


class TestNic:
    def test_vf_creation_capped(self):
        nic = Nic(max_vfs=2)
        nic.create_vf("mb1")
        nic.create_vf("mb2")
        with pytest.raises(RuntimeError):
            nic.create_vf("mb3")

    def test_vf_indices_sequential(self):
        nic = Nic()
        vfs = [nic.create_vf(f"mb{i}") for i in range(3)]
        assert [vf.index for vf in vfs] == [0, 1, 2]
        assert nic.vfs == vfs

    def test_pcie_traffic_two_crossings_per_hop(self):
        nic = Nic()
        assert nic.pcie_traffic_gbps(10.0, chain_depth=3) == 60.0

    def test_max_chain_depth(self):
        """Section 5: PCIe bounds the chain depth for a given load."""
        nic = Nic(pcie=PcieBus(usable_gbps=200.0))
        assert nic.max_chain_depth(20.0) == 5
        assert nic.max_chain_depth(50.0) == 2
        assert nic.max_chain_depth(200.0) == 0

    def test_zero_load_limited_by_vfs(self):
        nic = Nic(max_vfs=16)
        assert nic.max_chain_depth(0.0) == 16

    def test_port_headroom(self):
        assert Nic(port_gbps=100.0).port_headroom_gbps(30.0) == 70.0

    def test_vf_accounting(self):
        nic = Nic()
        vf = nic.create_vf("das")
        vf.account(rx_bytes=100, tx_bytes=300)
        assert (vf.rx_bytes, vf.tx_bytes) == (100, 300)


class TestEthernetSwitch:
    def test_forwarding_and_utilization(self):
        switch = EthernetSwitch()
        du_mac = MacAddress.from_int(1)
        ru_mac = MacAddress.from_int(2)
        received = []
        switch.attach(PortSpec("du"), PortRole.DU, [du_mac],
                      lambda p: None)
        switch.attach(PortSpec("ru", capacity_gbps=25.0), PortRole.RU,
                      [ru_mac], received.append)
        packet = make_packet(
            du_mac, ru_mac,
            CPlaneMessage(direction=Direction.DOWNLINK,
                          time=SymbolTime(0, 0, 0, 0),
                          sections=[CPlaneSection(0, 0, 50)]),
        )
        switch.inject(packet, "du")
        assert len(received) == 1
        assert switch.port_utilization("ru", 1e6) > 0
        assert switch.port_names() == ["du", "ru"]
