"""SequenceTracker: 8-bit wraparound, duplicates, gaps, reordering."""

import pytest

from repro.faults import SequenceTracker, SeqVerdict
from repro.obs import Observability

KEY = ("ru", 0)


class TestWraparound:
    def test_wrap_after_255_is_progress_not_retransmission(self):
        tracker = SequenceTracker()
        for seq in range(256):
            assert tracker.observe(KEY, seq).verdict is SeqVerdict.NEW
        # seq 0 again: one step forward modulo 256, not a 255-step retreat.
        status = tracker.observe(KEY, 0)
        assert status.verdict is SeqVerdict.NEW
        assert status.gap == 0
        assert tracker.duplicates == 0
        assert tracker.reordered == 0

    def test_gap_across_the_wrap_boundary(self):
        tracker = SequenceTracker()
        tracker.observe(KEY, 254)
        status = tracker.observe(KEY, 2)  # 255, 0, 1 lost
        assert status.verdict is SeqVerdict.NEW
        assert status.gap == 3
        assert tracker.lost_in_gaps == 3

    def test_raw_integers_are_reduced_modulo(self):
        tracker = SequenceTracker()
        tracker.observe(KEY, 300)  # == 44
        assert tracker.observe(KEY, 45).verdict is SeqVerdict.NEW


class TestDuplicates:
    def test_immediate_repeat_is_duplicate(self):
        tracker = SequenceTracker()
        tracker.observe(KEY, 7)
        assert tracker.observe(KEY, 7).verdict is SeqVerdict.DUPLICATE
        assert tracker.duplicates == 1

    def test_recently_seen_behind_head_is_duplicate(self):
        tracker = SequenceTracker()
        for seq in range(10):
            tracker.observe(KEY, seq)
        assert tracker.observe(KEY, 5).verdict is SeqVerdict.DUPLICATE

    def test_old_number_beyond_window_is_reordered(self):
        tracker = SequenceTracker(window=4)
        for seq in range(100):
            tracker.observe(KEY, seq)
        # 90 is behind the head and long since evicted from the window:
        # a late original, not a retransmission.
        assert tracker.observe(KEY, 90).verdict is SeqVerdict.REORDERED
        assert tracker.reordered == 1


class TestContext:
    def test_same_seq_same_context_is_duplicate(self):
        tracker = SequenceTracker()
        tracker.observe(KEY, 0, context="sym0")
        assert (
            tracker.observe(KEY, 0, context="sym0").verdict
            is SeqVerdict.DUPLICATE
        )

    def test_same_seq_new_context_is_fresh_traffic(self):
        """An unsequenced source reusing seq 0 every symbol is not
        retransmitting; only (seq, context) repeats are duplicates."""
        tracker = SequenceTracker()
        for symbol in range(5):
            status = tracker.observe(KEY, 0, context=f"sym{symbol}")
            assert status.verdict is SeqVerdict.NEW
        assert tracker.duplicates == 0
        # ... but replaying an already-seen symbol is caught.
        assert (
            tracker.observe(KEY, 0, context="sym4").verdict
            is SeqVerdict.DUPLICATE
        )

    def test_contextless_observe_matches_any(self):
        tracker = SequenceTracker()
        tracker.observe(KEY, 3, context="a")
        assert tracker.observe(KEY, 3).verdict is SeqVerdict.DUPLICATE


class TestStreams:
    def test_streams_are_independent(self):
        tracker = SequenceTracker()
        tracker.observe(("a",), 10)
        tracker.observe(("b",), 200)
        assert tracker.observe(("a",), 11).verdict is SeqVerdict.NEW
        assert tracker.observe(("b",), 201).verdict is SeqVerdict.NEW
        assert tracker.streams() == 2
        assert tracker.gaps == 0

    def test_gap_counting(self):
        tracker = SequenceTracker()
        tracker.observe(KEY, 0)
        tracker.observe(KEY, 5)
        tracker.observe(KEY, 6)
        tracker.observe(KEY, 10)
        assert tracker.gaps == 2
        assert tracker.lost_in_gaps == 4 + 3


class TestValidationAndObs:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SequenceTracker(modulus=1)
        with pytest.raises(ValueError):
            SequenceTracker(window=0)
        with pytest.raises(ValueError):
            SequenceTracker(modulus=16, window=16)

    def test_obs_export(self):
        obs = Observability(enabled=True)
        tracker = SequenceTracker(name="t", obs=obs)
        tracker.observe(KEY, 0)
        tracker.observe(KEY, 0)  # duplicate
        tracker.observe(KEY, 4)  # gap of 3
        snapshot = obs.registry.snapshot()
        assert snapshot["seq_anomalies_total"]["series"]["t,duplicate"] == 1
        assert snapshot["seq_gaps_total"]["series"]["t"] == 1
        assert snapshot["seq_lost_packets_total"]["series"]["t"] == 3
