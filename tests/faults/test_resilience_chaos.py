"""ResilienceMiddlebox under injected DU silence on a live network.

The failure is injected by the seeded wire (``FaultInjector.silence``),
not by surgically removing the DU from the topology: the primary keeps
emitting, the wire eats its frames, and the middlebox must notice from
timing alone.  All timing comes from packet timestamps, so every run is
deterministic.
"""

import pytest

from repro.apps.resilience import ResilienceMiddlebox
from repro.faults import FaultInjector, ImpairedLink
from repro.fronthaul.cplane import Direction
from repro.fronthaul.timing import SymbolTime
from repro.ran.du import DistributedUnit
from repro.ran.ru import RadioUnit, RuConfig
from repro.ran.traffic import ConstantBitrateFlow
from repro.sim.network_sim import FronthaulNetwork

FAIL_SLOT = 4


def make_du(du_id, cell, seed=17):
    du = DistributedUnit(du_id=du_id, cell=cell, symbols_per_slot=1, seed=seed)
    du.scheduler.add_ue("ue", dl_layers=2)
    du.scheduler.update_ue_quality("ue", dl_aggregate_se=10.0, ul_se=3.0)
    du.attach_flow("ue", ConstantBitrateFlow(100, "dl"), Direction.DOWNLINK)
    du.attach_flow("ue", ConstantBitrateFlow(20, "ul"), Direction.UPLINK)
    return du


@pytest.fixture
def topology(cell_40mhz):
    primary = make_du(1, cell_40mhz, seed=17)
    standby = make_du(2, cell_40mhz, seed=18)
    ru = RadioUnit(
        ru_id=1,
        config=RuConfig(num_prb=cell_40mhz.num_prb, n_antennas=2),
        seed=17,
    )
    numerology = cell_40mhz.numerology
    box = ResilienceMiddlebox(
        primary_du=primary.mac,
        standby_du=standby.mac,
        ru_mac=ru.mac,
        silence_threshold_ns=2 * numerology.slot_duration_ns,
    )
    ru.du_mac = box.mac
    injector = FaultInjector(seed=3, carrier_num_prb=cell_40mhz.num_prb)
    network = FronthaulNetwork(
        middleboxes=[box], wire=ImpairedLink(injector)
    )
    network.add_du(primary)
    network.add_du(standby)
    network.add_ru(ru)
    return network, box, injector, primary, standby, ru, numerology


def silence_primary(injector, primary, numerology, start=FAIL_SLOT, end=None):
    start_key = SymbolTime.from_absolute_slot(start, numerology).slot_key()
    end_key = (
        None if end is None
        else SymbolTime.from_absolute_slot(end, numerology).slot_key()
    )
    injector.silence(primary.mac, start_key, end_key)


class TestFailoverUnderSilence:
    def test_detects_and_fails_over_within_threshold(self, topology):
        network, box, injector, primary, standby, ru, numerology = topology
        silence_primary(injector, primary, numerology)
        network.run(FAIL_SLOT + 8)
        assert len(box.events) == 1
        event = box.events[0]
        assert event.failed_du == primary.mac
        assert event.standby_du == standby.mac
        assert box.active_du == standby.mac
        # Detected from timing: silence is a little over the threshold,
        # never less.
        threshold = box.management.get("silence_threshold_ns")
        assert threshold < event.silence_ns <= threshold + \
            4 * numerology.slot_duration_ns
        assert injector.stats.silenced > 0

    def test_traffic_keeps_flowing_after_failover(self, topology):
        network, box, injector, primary, standby, ru, numerology = topology
        silence_primary(injector, primary, numerology)
        network.run(FAIL_SLOT + 10)
        # The standby took over the uplink: it received packets after the
        # failover slot, and the primary stopped receiving.
        assert standby.counters.ul_packets + standby.counters.prach_detections > 0
        # RU kept receiving downlink the whole run (standby's stream).
        dl_after = sum(
            r.dl_packets for r in network.reports[FAIL_SLOT + 4:]
        )
        assert dl_after > 0

    def test_determinism_same_seed_same_event(self, cell_40mhz):
        def run_once():
            primary = make_du(1, cell_40mhz, seed=17)
            standby = make_du(2, cell_40mhz, seed=18)
            ru = RadioUnit(
                ru_id=1,
                config=RuConfig(num_prb=cell_40mhz.num_prb, n_antennas=2),
                seed=17,
            )
            numerology = cell_40mhz.numerology
            box = ResilienceMiddlebox(
                primary_du=primary.mac, standby_du=standby.mac,
                ru_mac=ru.mac,
                silence_threshold_ns=2 * numerology.slot_duration_ns,
            )
            ru.du_mac = box.mac
            injector = FaultInjector(seed=3, carrier_num_prb=cell_40mhz.num_prb)
            silence_primary(injector, primary, numerology)
            network = FronthaulNetwork(
                middleboxes=[box], wire=ImpairedLink(injector)
            )
            network.add_du(primary)
            network.add_du(standby)
            network.add_ru(ru)
            network.run(FAIL_SLOT + 8)
            return box.events[0].silence_ns, injector.trace_bytes()

        assert run_once() == run_once()


class TestLateRiser:
    def test_recovered_primary_is_suppressed(self, topology):
        network, box, injector, primary, standby, ru, numerology = topology
        # Primary dark for a bounded window, then it "recovers".
        silence_primary(
            injector, primary, numerology, start=FAIL_SLOT, end=FAIL_SLOT + 6
        )
        network.run(FAIL_SLOT + 6)  # failover happens inside the window
        assert len(box.events) == 1
        silenced_during_window = injector.stats.silenced
        dropped_before = box.stats.dropped_packets
        network.run(6)  # the primary is back on the wire
        assert injector.stats.silenced == silenced_during_window
        # No flap: the standby still owns the RU and the late riser's
        # frames reach the middlebox only to be dropped there.
        assert len(box.events) == 1
        assert box.active_du == standby.mac
        assert box.stats.dropped_packets > dropped_before

    def test_manual_failback_restores_the_primary(self, topology):
        network, box, injector, primary, standby, ru, numerology = topology
        silence_primary(
            injector, primary, numerology, start=FAIL_SLOT, end=FAIL_SLOT + 6
        )
        network.run(FAIL_SLOT + 8)
        assert box.active_du == standby.mac
        before = primary.counters.ul_packets + primary.counters.prach_detections
        box.failback()
        assert box.active_du == primary.mac
        network.run(4)
        after = primary.counters.ul_packets + primary.counters.prach_detections
        assert after > before  # uplink steered back to the primary
        assert len(box.events) == 1  # failback is not a failover event
