"""Determinism goldens: same seed, byte-identical chaos every time."""

import numpy as np

from repro.eval.chaos import run_chaos
from repro.faults import (
    FaultConfig,
    FaultInjector,
    GilbertElliottConfig,
)
from repro.fronthaul.cplane import Direction
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.packet import make_packet
from repro.fronthaul.timing import Numerology, SymbolTime
from repro.fronthaul.uplane import UPlaneMessage, UPlaneSection

from tests.conftest import random_prb_samples


def traffic(seed, n=120):
    rng = np.random.default_rng(seed)
    src = MacAddress.from_int(0x41)
    dst = MacAddress.from_int(0x42)
    packets = []
    for i in range(n):
        time = SymbolTime.from_absolute_slot(
            i % 16, Numerology(mu=1), symbol=i % 14
        )
        section = UPlaneSection.from_samples(0, 0, random_prb_samples(rng, 4))
        packets.append(
            make_packet(
                src, dst,
                UPlaneMessage(direction=Direction.UPLINK, time=time,
                              sections=[section]),
                seq_id=i % 256,
            )
        )
    return packets


GOLDEN_CONFIG = FaultConfig(
    loss_rate=0.05,
    burst=GilbertElliottConfig(p_enter_burst=0.03, p_exit_burst=0.3,
                               loss_burst=0.9),
    duplicate_rate=0.02,
    reorder_rate=0.02,
    corrupt_rate=0.03,
    corrupt_bits=3,
    truncate_rate=0.01,
    jitter_ns=250.0,
)


def impair_once(seed=99):
    injector = FaultInjector(GOLDEN_CONFIG, seed=seed)
    survivors = injector.apply(traffic(seed))
    survivors += injector.flush_held()
    return injector, survivors


class TestImpairmentTraceGolden:
    def test_trace_is_byte_identical_across_runs(self):
        first, _ = impair_once()
        second, _ = impair_once()
        assert first.trace_bytes() == second.trace_bytes()
        assert first.trace_bytes()  # a nonempty golden

    def test_survivor_bytes_identical_across_runs(self):
        _, first = impair_once()
        _, second = impair_once()
        assert [p.pack() for p in first] == [p.pack() for p in second]

    def test_seed_changes_the_trace(self):
        first, _ = impair_once(seed=99)
        other, _ = impair_once(seed=100)
        assert first.trace_bytes() != other.trace_bytes()


class TestChaosEvalGolden:
    def test_fingerprint_reproduces_across_two_runs(self):
        first = run_chaos(seed=7, slots=12)
        second = run_chaos(seed=7, slots=12)
        assert first.fingerprint() == second.fingerprint()

    def test_smoke_is_healthy(self):
        # run_chaos calls assert_healthy itself: zero uncaught exceptions,
        # nonzero absorbed-fault counters, exact breaker behavior.
        result = run_chaos(seed=7, slots=12)
        assert result.chain.wire_absorbed > 0
        assert result.chain.breaker_opens == 1
        assert result.chain.accounting_ok
        assert result.format()  # renders without error
