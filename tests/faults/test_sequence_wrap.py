"""Exhaustive 255 -> 0 wrap coverage for :class:`SequenceTracker`.

The 8-bit ``seq_id`` makes every comparison modular: a wrap must read as
``delta == 1``, a loss spanning the wrap must count its true gap, and the
half-window rule has a hard ambiguity edge — ``delta == 128`` is the
largest decodable forward gap (127 lost), while ``delta == 129`` means
the packet is 127 numbers *behind* the stream head.  These tests pin
that edge exhaustively and exercise it under duplication and reorder.
"""

from repro.faults.sequence import SeqVerdict, SequenceTracker


def tracker(**kwargs):
    return SequenceTracker(modulus=256, **kwargs)


class TestExhaustiveWrap:
    def test_increment_is_clean_from_every_start(self):
        # 256 streams, one per starting seq: +1 is NEW/no-gap everywhere,
        # including 255 -> 0.
        t = tracker()
        for start in range(256):
            t.observe(start, start)
            status = t.observe(start, (start + 1) % 256)
            assert status.verdict is SeqVerdict.NEW
            assert status.gap == 0, start
        assert t.gaps == 0 and t.lost_in_gaps == 0

    def test_every_delta_from_every_head(self):
        # The full 256 x 255 (head, delta) grid: forward half advances
        # with gap == delta - 1, the back half classifies as behind.
        t = tracker()
        for head in range(256):
            for delta in range(1, 256):
                key = (head, delta)
                t.observe(key, head)
                status = t.observe(key, (head + delta) % 256)
                if delta <= 128:
                    assert status.verdict is SeqVerdict.NEW, key
                    assert status.gap == delta - 1, key
                else:
                    assert status.verdict is SeqVerdict.REORDERED, key
                    assert status.gap == 0, key

    def test_ambiguity_edge(self):
        # delta == 128: largest decodable loss (127 skipped).
        t = tracker()
        t.observe("s", 200)
        assert t.observe("s", (200 + 128) % 256).gap == 127
        # delta == 129: indistinguishable from 127 behind — must NOT be
        # read as a 128-packet gap.
        t2 = tracker()
        t2.observe("s", 200)
        status = t2.observe("s", (200 + 129) % 256)
        assert status.verdict is SeqVerdict.REORDERED
        assert t2.lost_in_gaps == 0

    def test_loss_spanning_the_wrap_counts_true_gap(self):
        t = tracker()
        t.observe("s", 250)
        status = t.observe("s", 3)  # lost 251..255, 0..2
        assert status.verdict is SeqVerdict.NEW
        assert status.gap == 8
        assert t.lost_in_gaps == 8


class TestWrapUnderDuplication:
    def test_duplicates_straddling_the_wrap(self):
        t = tracker()
        for seq in (254, 255, 0, 1):
            assert t.observe("s", seq, context="c").verdict is SeqVerdict.NEW
        # Retransmit both sides of the boundary.
        assert t.observe("s", 255, context="c").verdict is SeqVerdict.DUPLICATE
        assert t.observe("s", 0, context="c").verdict is SeqVerdict.DUPLICATE
        assert t.duplicates == 2 and t.gaps == 0

    def test_seq_reuse_with_new_context_is_fresh_traffic(self):
        # A full 256-packet lap (or an unsequenced source pinning seq 0)
        # repeats the number with a *different* context: not a duplicate.
        t = tracker()
        t.observe("s", 0, context="lap-0")
        assert t.observe("s", 0, context="lap-1").verdict is SeqVerdict.NEW
        assert t.duplicates == 0

    def test_window_eviction_bounds_duplicate_memory(self):
        t = tracker(window=4)
        for seq in range(6):
            t.observe("s", seq, context="c")
        # seq 0 was evicted from the 4-deep window: an ancient replay now
        # reads as a late original, not a duplicate.
        assert t.observe("s", 0, context="c").verdict is SeqVerdict.REORDERED
        # seq 4 is still inside the window.
        assert t.observe("s", 4, context="c").verdict is SeqVerdict.DUPLICATE


class TestWrapUnderReorder:
    def test_straggler_across_the_wrap(self):
        t = tracker()
        arrivals = (254, 0, 255, 1)  # 255 overtaken by 0
        verdicts = [t.observe("s", seq, context=seq).verdict
                    for seq in arrivals]
        assert verdicts == [
            SeqVerdict.NEW,
            SeqVerdict.NEW,        # gap: 255 presumed lost
            SeqVerdict.REORDERED,  # ...then it limps in late
            SeqVerdict.NEW,
        ]
        # The gap was charged when 0 arrived; the straggler's later
        # arrival does not retroactively un-count it.
        assert t.lost_in_gaps == 1 and t.reordered == 1

    def test_reordered_then_retransmitted_is_a_dup(self):
        t = tracker()
        t.observe("s", 254, context=254)
        t.observe("s", 0, context=0)
        assert t.observe("s", 255, context=255).verdict is SeqVerdict.REORDERED
        assert t.observe("s", 255, context=255).verdict is SeqVerdict.DUPLICATE


class TestDeterministicSoak:
    def test_loss_and_dup_accounting_over_three_laps(self, rng):
        # 700 packets (two wraps), known drop and immediate-dup sets:
        # the tracker's ledger must reconcile exactly.
        drops = set(rng.choice(range(1, 700), size=40, replace=False).tolist())
        pool = sorted(set(range(700)) - drops)
        dups = set(rng.choice(pool, size=25, replace=False).tolist())
        t = tracker()
        for ordinal in range(700):
            if ordinal in drops:
                continue
            seq = ordinal % 256
            status = t.observe("s", seq, context=ordinal)
            assert status.verdict is SeqVerdict.NEW
            if ordinal in dups:
                redo = t.observe("s", seq, context=ordinal)
                assert redo.verdict is SeqVerdict.DUPLICATE
        assert t.lost_in_gaps == len(drops)
        assert t.duplicates == len(dups)
        assert t.reordered == 0
