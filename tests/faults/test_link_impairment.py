"""Link drop accounting, switch port impairment, malformed containment."""

import numpy as np
import pytest

from repro.core.chain import FronthaulSwitch, PortRole
from repro.faults import FaultConfig, FaultInjector, ImpairedLink
from repro.fronthaul.cplane import Direction
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.packet import make_packet, parse_packet
from repro.fronthaul.timing import Numerology, SymbolTime
from repro.fronthaul.uplane import UPlaneMessage, UPlaneSection
from repro.net.link import Link
from repro.obs import Observability

from tests.conftest import random_prb_samples

SRC = MacAddress.from_int(0x81)
DST = MacAddress.from_int(0x82)


def uplane(rng, slot=0, n_prbs=4):
    time = SymbolTime.from_absolute_slot(slot, Numerology(mu=1), symbol=3)
    section = UPlaneSection.from_samples(0, 0, random_prb_samples(rng, n_prbs))
    return make_packet(
        SRC, DST,
        UPlaneMessage(direction=Direction.UPLINK, time=time,
                      sections=[section]),
    )


def burst(rng, n=60):
    return [uplane(rng, slot=i % 8) for i in range(n)]


class TestLinkDrops:
    def test_drop_counts_and_exports(self):
        obs = Observability(enabled=True)
        link = Link(name="l0", obs=obs)
        link.drop(3, reason="loss")
        link.drop(1, reason="malformed")
        link.drop(0, reason="loss")  # no-op
        assert link.stats.drops == 4
        series = obs.registry.snapshot()["link_drops_total"]["series"]
        assert series["l0,loss"] == 3
        assert series["l0,malformed"] == 1

    def test_drop_disabled_obs_only_counts_locally(self):
        link = Link(name="l1")
        link.drop(2)
        assert link.stats.drops == 2


class TestImpairedLink:
    def test_losses_land_in_link_stats_by_cause(self, rng):
        obs = Observability(enabled=True)
        injector = FaultInjector(
            FaultConfig(loss_rate=0.3, corrupt_rate=0.3, corrupt_bits=16),
            seed=21,
        )
        wire = ImpairedLink(injector, link=Link(name="wire", obs=obs))
        packets = burst(rng, 120)
        survivors = wire.carry(packets)
        stats = injector.stats
        assert wire.stats.drops == stats.absorbed > 0
        assert wire.stats.packets_carried == len(survivors)
        series = obs.registry.snapshot()["link_drops_total"]["series"]
        assert series.get("wire,loss", 0) == stats.lost_iid
        assert series.get("wire,malformed", 0) == stats.corrupt_dropped

    def test_clean_wire_carries_everything(self, rng):
        wire = ImpairedLink(FaultInjector(seed=0))
        packets = burst(rng, 10)
        assert wire.carry(packets) == packets
        assert wire.stats.drops == 0
        assert wire.stats.packets_carried == 10


class TestSwitchImpairment:
    def make_switch(self, obs=None):
        switch = FronthaulSwitch(obs=obs)
        received = []
        switch.attach("src", PortRole.DU, [SRC], lambda p: None)
        switch.attach(
            "dst", PortRole.RU, [DST],
            lambda p: received.append(parse_packet(p.pack())),
        )
        return switch, received

    def test_impair_unknown_port_rejected(self):
        switch, _ = self.make_switch()
        with pytest.raises(KeyError):
            switch.impair("nope", FaultInjector(seed=0))

    def test_injector_on_port_absorbs_and_counts(self, rng):
        obs = Observability(enabled=True)
        switch, received = self.make_switch(obs=obs)
        injector = FaultInjector(FaultConfig(loss_rate=0.5), seed=13)
        switch.impair("dst", injector)
        n = 80
        for packet in burst(rng, n):
            switch.inject(packet, from_port="src")
        port = switch.port("dst")
        assert port.impaired_frames == injector.stats.lost_iid > 0
        assert len(received) == n - port.impaired_frames
        assert port.rx_packets == len(received)  # absorbed ≠ received
        series = obs.registry.snapshot()["switch_impaired_total"]["series"]
        assert series["fabric,dst"] == port.impaired_frames

    def test_malformed_delivery_contained_not_propagated(self, rng):
        obs = Observability(enabled=True)
        switch = FronthaulSwitch(obs=obs)
        received = []

        def strict_parser(packet):
            # A device parser that rejects every third frame as damaged.
            if (len(received) + 1) % 3 == 0:
                received.append(None)
                raise ValueError("bad frame")
            received.append(packet)

        switch.attach("src", PortRole.DU, [SRC], lambda p: None)
        switch.attach("dst", PortRole.RU, [DST], strict_parser)
        n = 30
        for packet in burst(rng, n):
            switch.inject(packet, from_port="src")  # must never raise
        port = switch.port("dst")
        assert port.malformed_frames == n // 3
        series = obs.registry.snapshot()["switch_malformed_total"]["series"]
        assert series["fabric,dst"] == port.malformed_frames
        # Containment accounting: every frame was either rejected at the
        # parser or delivered; none unwound the fabric.
        delivered = [p for p in received if p is not None]
        assert port.malformed_frames + len(delivered) == n

    def test_corrupting_injector_end_to_end_never_raises(self):
        # Aggressive damage on a port's wire: absorbed frames counted,
        # survivors delivered, and injection never propagates an error.
        obs = Observability(enabled=True)
        switch, received = self.make_switch(obs=obs)
        injector = FaultInjector(
            FaultConfig(corrupt_rate=1.0, corrupt_bits=12),
            seed=29,
        )
        switch.impair("dst", injector)
        for packet in burst(np.random.default_rng(7), 120):
            switch.inject(packet, from_port="src")
        port = switch.port("dst")
        assert port.impaired_frames == injector.stats.absorbed > 0
        assert (
            port.impaired_frames + port.malformed_frames + len(received)
            == injector.stats.offered
        )
