"""Chain fault isolation: raising stages become drops, breakers trip."""

import pytest

from repro.core.chain import BreakerState, CircuitBreaker, MiddleboxChain
from repro.core.middlebox import Middlebox
from repro.faults import FaultyMiddlebox, InjectedFault
from repro.fronthaul.cplane import CPlaneMessage, CPlaneSection, Direction
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.packet import make_packet
from repro.fronthaul.timing import Numerology, SymbolTime
from repro.obs import Observability

SRC = MacAddress.from_int(0x71)
DST = MacAddress.from_int(0x72)


def packet(slot=0):
    time = SymbolTime.from_absolute_slot(slot, Numerology(mu=1))
    return make_packet(
        SRC, DST,
        CPlaneMessage(direction=Direction.DOWNLINK, time=time,
                      sections=[CPlaneSection(0, 0, 106)]),
    )


class Counter(Middlebox):
    app_name = "counter"

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.seen = 0

    def _count(self, ctx, pkt):
        self.seen += 1
        ctx.forward(pkt)

    on_cplane = _count
    on_uplane = _count


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, probation_packets=2)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.opens == 1

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_probation_then_half_open_then_recovery(self):
        breaker = CircuitBreaker(failure_threshold=1, probation_packets=3)
        breaker.record_failure()
        assert [breaker.admit() for _ in range(3)] == [False] * 3
        assert breaker.admit() is True  # the half-open probe
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.recoveries == 1

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, probation_packets=1)
        breaker.record_failure()
        breaker.admit()
        breaker.admit()
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.opens == 2
        assert breaker.recoveries == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(probation_packets=-1)


class TestStageIsolation:
    def test_raising_stage_is_a_counted_drop_not_a_crash(self):
        faulty = FaultyMiddlebox(fail_every=2)
        tail = Counter()
        chain = MiddleboxChain([faulty, tail], breaker_threshold=100)
        out = chain.process_downlink([packet(slot) for slot in range(6)])
        # Every second packet died at the faulty stage; the rest flowed on.
        assert len(out) == 3
        assert tail.seen == 3
        assert chain.stage_faults == [3, 0]
        assert chain.total_stage_faults == 3
        assert len(chain.fault_log) == 3
        stage, name, exc = chain.fault_log[0]
        assert stage == 0 and name == "faulty" and "InjectedFault" in exc

    def test_isolation_off_propagates_like_the_seed(self):
        chain = MiddleboxChain(
            [FaultyMiddlebox(fail_every=1)], isolate_faults=False
        )
        with pytest.raises(InjectedFault):
            chain.process_downlink([packet()])

    def test_empty_chain_still_rejected(self):
        with pytest.raises(ValueError):
            MiddleboxChain([])


class TestChainBreaker:
    def test_breaker_opens_bypasses_and_recovers_exactly(self):
        faulty = FaultyMiddlebox(fail_range=(3, 6))  # packets 3,4,5 raise
        tail = Counter()
        chain = MiddleboxChain(
            [faulty, tail], breaker_threshold=3, breaker_probation=4
        )
        packets = [packet(slot % 8) for slot in range(15)]
        out = chain.process_downlink(packets)
        breaker = chain.breakers[0]
        # 2 pass, 3 fault (opens), 4 bypass, probe passes (recovery),
        # remaining 5 pass: 15 in, 3 dropped.
        assert chain.stage_faults == [3, 0]
        assert chain.stage_bypassed == [4, 0]
        assert breaker.opens == 1
        assert breaker.recoveries == 1
        assert breaker.state is BreakerState.CLOSED
        assert len(out) == 12
        # Bypassed packets really skipped the stage...
        assert faulty.seen == 15 - 4
        # ...but still reached the next one.
        assert tail.seen == 12
        assert chain.breaker_events == [
            (0, "closed", "open"),
            (0, "open", "half_open"),
            (0, "half_open", "closed"),
        ]

    def test_obs_counters_match_python_truth(self):
        obs = Observability(enabled=True, sample_every=1 << 30)
        faulty = FaultyMiddlebox(fail_range=(1, 3), obs=obs)
        chain = MiddleboxChain(
            [faulty], name="c", obs=obs,
            breaker_threshold=2, breaker_probation=2,
        )
        chain.process_downlink([packet(slot % 8) for slot in range(8)])
        snapshot = obs.registry.snapshot()
        faults = snapshot["chain_stage_faults_total"]["series"]
        assert sum(faults.values()) == chain.total_stage_faults == 2
        bypassed = snapshot["chain_stage_bypassed_total"]["series"]
        assert sum(bypassed.values()) == sum(chain.stage_bypassed) == 2
        transitions = snapshot["chain_breaker_transitions_total"]["series"]
        assert transitions["c,0:faulty,open"] == 1
        assert transitions["c,0:faulty,closed"] == 1
        state = snapshot["chain_breaker_state"]["series"]
        assert state["c,0:faulty"] == 0  # closed again

    def test_uplink_direction_also_isolated(self):
        faulty = FaultyMiddlebox(fail_every=1)
        chain = MiddleboxChain(
            [Counter(), faulty], breaker_threshold=100
        )
        out = chain.process_uplink([packet()])
        assert out == []
        assert chain.stage_faults == [0, 1]
