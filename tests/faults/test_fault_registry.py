"""Declarative fault specs: names and dicts resolve through the registry."""

import pytest

from repro.core.chain import FronthaulSwitch, PortRole
from repro.faults import (
    FaultInjector,
    fault_config_from_spec,
    fault_kinds,
    injector_from_spec,
)
from repro.fronthaul.cplane import CPlaneMessage, CPlaneSection, Direction
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.packet import make_packet
from repro.fronthaul.timing import SymbolTime
from repro.net.switch import EthernetSwitch, PortSpec


def packet(src, dst):
    return make_packet(
        src, dst,
        CPlaneMessage(
            direction=Direction.DOWNLINK,
            time=SymbolTime(0, 0, 0, 0),
            sections=[CPlaneSection(0, 0, 50)],
        ),
    )


def test_builtin_kinds_registered():
    kinds = fault_kinds()
    for kind in ("iid_loss", "gilbert_elliott", "corrupt", "jitter",
                 "duplicate", "reorder", "truncate", "chaos"):
        assert kind in kinds


def test_string_spec_uses_defaults():
    config = fault_config_from_spec("duplicate")
    assert config.duplicate_rate > 0


def test_dict_spec_sets_params():
    config = fault_config_from_spec({"kind": "iid_loss", "rate": 0.25})
    assert config.loss_rate == 0.25


def test_unknown_kind_rejected():
    with pytest.raises(KeyError, match="unknown fault kind"):
        fault_config_from_spec("gremlins")


def test_unknown_param_rejected():
    with pytest.raises((KeyError, TypeError)):
        fault_config_from_spec({"kind": "iid_loss", "bogus": 1})


def test_injector_from_spec_seeded_and_scoped():
    injector = injector_from_spec(
        {"kind": "iid_loss", "rate": 1.0, "seed": 3,
         "scope": {"direction": "dl"}}
    )
    assert isinstance(injector, FaultInjector)
    again = injector_from_spec(
        {"kind": "iid_loss", "rate": 1.0, "seed": 3,
         "scope": {"direction": "dl"}}
    )
    src, dst = MacAddress.from_int(1), MacAddress.from_int(2)
    survivors = [len(injector.apply([packet(src, dst)])) for _ in range(8)]
    replayed = [len(again.apply([packet(src, dst)])) for _ in range(8)]
    assert survivors == replayed
    assert injector.stats.absorbed == again.stats.absorbed


class TestSwitchImpairBySpec:
    def setup_method(self):
        self.du_mac = MacAddress.from_int(1)
        self.ru_mac = MacAddress.from_int(2)
        self.ru_rx = []

    def _wire(self, switch):
        switch.attach("du", PortRole.DU, [self.du_mac], lambda p: None)
        switch.attach("ru", PortRole.RU, [self.ru_mac], self.ru_rx.append)

    def test_core_switch_accepts_spec_dict(self):
        switch = FronthaulSwitch()
        self._wire(switch)
        installed = switch.impair(
            "ru", {"kind": "iid_loss", "rate": 1.0, "seed": 1}
        )
        assert isinstance(installed, FaultInjector)
        switch.inject(packet(self.du_mac, self.ru_mac), "du")
        assert not self.ru_rx
        assert installed.stats.absorbed == 1

    def test_core_switch_accepts_kind_name(self):
        switch = FronthaulSwitch()
        self._wire(switch)
        installed = switch.impair("ru", "duplicate")
        assert isinstance(installed, FaultInjector)

    def test_core_switch_still_accepts_live_injector(self):
        switch = FronthaulSwitch()
        self._wire(switch)
        live = injector_from_spec("iid_loss")
        assert switch.impair("ru", live) is live

    def test_ethernet_switch_delegates_spec_resolution(self):
        switch = EthernetSwitch()
        switch.attach(PortSpec("du"), PortRole.DU, [self.du_mac],
                      lambda p: None)
        switch.attach(PortSpec("ru"), PortRole.RU, [self.ru_mac],
                      self.ru_rx.append)
        installed = switch.impair(
            "ru", {"kind": "iid_loss", "rate": 1.0, "seed": 2}
        )
        assert isinstance(installed, FaultInjector)
        switch.inject(packet(self.du_mac, self.ru_mac), "du")
        assert not self.ru_rx
