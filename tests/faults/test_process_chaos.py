"""Process-level chaos specs: validation, determinism, targeting."""

import pytest

from repro.faults.process import (
    CHAOS_KINDS,
    ProcessChaosAgent,
    ProcessChaosSpec,
    corrupt_descriptor,
    seeded_chaos_sweep,
)


def test_spec_round_trip():
    spec = ProcessChaosSpec(
        kind="stall", epoch=3, group="campus", stall_s=7.5, name="nap"
    )
    assert ProcessChaosSpec.from_dict(spec.to_dict()) == spec


def test_spec_rejects_unknown_keys():
    with pytest.raises(KeyError):
        ProcessChaosSpec.from_dict(
            {"kind": "kill", "epoch": 0, "group": "g", "surprise": 1}
        )


@pytest.mark.parametrize(
    "bad",
    [
        {"kind": "meteor", "epoch": 0, "group": "g"},
        {"kind": "kill", "epoch": -1, "group": "g"},
        {"kind": "kill", "epoch": 0},  # no target
        {"kind": "kill", "epoch": 0, "group": "g", "worker": 1},  # both
        {"kind": "stall", "epoch": 0, "group": "g", "stall_s": 0.0},
    ],
)
def test_spec_validation(bad):
    with pytest.raises(ValueError):
        ProcessChaosSpec(**bad)


def test_targeting_by_group_and_worker():
    by_group = ProcessChaosSpec(kind="kill", epoch=0, group="campus")
    assert by_group.targets(0, ["campus", "solo"])
    assert not by_group.targets(0, ["solo"])
    by_worker = ProcessChaosSpec(kind="kill", epoch=0, worker=2)
    assert by_worker.targets(2, [])
    assert not by_worker.targets(1, ["anything"])


def test_agent_fires_each_injection_once():
    specs = [
        ProcessChaosSpec(kind="kill", epoch=1, group="a"),
        ProcessChaosSpec(kind="stall", epoch=1, group="b"),
    ]
    agent = ProcessChaosAgent(specs, worker=0, group_names=["a", "b"])
    first = agent.take(1)
    second = agent.take(1)
    assert {first.kind, second.kind} == {"kill", "stall"}
    assert agent.take(1) is None
    assert agent.take(0) is None


def test_disarmed_agent_keeps_only_rearm_injections():
    specs = [
        ProcessChaosSpec(kind="kill", epoch=0, group="a"),
        ProcessChaosSpec(kind="kill", epoch=1, group="a", rearm=True),
    ]
    agent = ProcessChaosAgent(specs, worker=0, group_names=["a"], armed=False)
    assert [spec.epoch for spec in agent.pending] == [1]


def test_seeded_sweep_is_deterministic_and_covers_kinds():
    groups = ["campus", "pair", "solo"]
    first = seeded_chaos_sweep(99, epochs=4, groups=groups)
    second = seeded_chaos_sweep(99, epochs=4, groups=groups)
    assert first == second
    assert [spec.kind for spec in first] == list(CHAOS_KINDS)
    assert all(0 <= spec.epoch < 4 for spec in first)
    assert all(spec.group in groups for spec in first)
    assert seeded_chaos_sweep(100, epochs=4, groups=groups) != first


def test_seeded_sweep_validates_inputs():
    with pytest.raises(ValueError):
        seeded_chaos_sweep(0, epochs=0, groups=["g"])
    with pytest.raises(ValueError):
        seeded_chaos_sweep(0, epochs=2, groups=[])


def test_corrupt_descriptor_mangles_real_and_degenerate_shapes():
    real = ((0, 64, 64), ((64, 128, 192),))
    corrupted = corrupt_descriptor(real)
    assert corrupted[0][1] > 1 << 39  # nbytes blown out of any ring
    assert corrupted[0][2] > 1 << 39
    assert corrupt_descriptor(None)[0][0] >= 1 << 40
    assert corrupt_descriptor(("inline", [1, 2]))[1] == ()
