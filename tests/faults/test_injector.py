"""FaultInjector behaviors: determinism, loss models, scope, damage."""

import numpy as np
import pytest

from repro.faults import (
    FaultConfig,
    FaultInjector,
    FaultScope,
    GilbertElliottConfig,
)
from repro.fronthaul.cplane import CPlaneMessage, CPlaneSection, Direction
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.packet import make_packet
from repro.fronthaul.timing import Numerology, SymbolTime
from repro.fronthaul.uplane import UPlaneMessage, UPlaneSection

from tests.conftest import random_prb_samples

SRC = MacAddress.from_int(0x11)
DST = MacAddress.from_int(0x22)
OTHER = MacAddress.from_int(0x33)


def cplane(slot=0, src=SRC, seq=0):
    time = SymbolTime.from_absolute_slot(slot, Numerology(mu=1))
    return make_packet(
        src, DST,
        CPlaneMessage(direction=Direction.DOWNLINK, time=time,
                      sections=[CPlaneSection(0, 0, 106)]),
        seq_id=seq,
    )


def uplane(rng, slot=0, src=SRC, seq=0, n_prbs=4):
    time = SymbolTime.from_absolute_slot(slot, Numerology(mu=1), symbol=3)
    section = UPlaneSection.from_samples(0, 0, random_prb_samples(rng, n_prbs))
    return make_packet(
        src, DST,
        UPlaneMessage(direction=Direction.UPLINK, time=time,
                      sections=[section]),
        seq_id=seq,
    )


def burst(rng, n=50):
    return [uplane(rng, slot=i % 8, seq=i % 256) for i in range(n)]


class TestDeterminism:
    def test_same_seed_same_trace_and_survivors(self, rng):
        config = FaultConfig(
            loss_rate=0.2, duplicate_rate=0.1, reorder_rate=0.1,
            corrupt_rate=0.1, truncate_rate=0.05, jitter_ns=100.0,
        )
        packets = burst(rng, 80)
        runs = []
        for _ in range(2):
            injector = FaultInjector(config, seed=42)
            survivors = injector.apply([p.clone() for p in packets])
            survivors += injector.flush_held()
            runs.append((injector.trace_bytes(),
                         [s.pack() for s in survivors]))
        assert runs[0][0] == runs[1][0]
        assert runs[0][1] == runs[1][1]
        assert runs[0][0]  # something actually happened

    def test_different_seed_diverges(self, rng):
        config = FaultConfig(loss_rate=0.3)
        packets = burst(rng, 60)
        traces = set()
        for seed in (1, 2):
            injector = FaultInjector(config, seed=seed)
            injector.apply([p.clone() for p in packets])
            traces.add(injector.trace_bytes())
        assert len(traces) == 2


class TestLossModels:
    def test_iid_loss_rate_roughly_honored(self, rng):
        injector = FaultInjector(FaultConfig(loss_rate=0.2), seed=3)
        n = 500
        survivors = injector.apply(burst(rng, n))
        assert injector.stats.lost_iid == n - len(survivors)
        assert 0.1 < injector.stats.lost_iid / n < 0.3

    def test_zero_config_passes_everything_untouched(self, rng):
        injector = FaultInjector(seed=1)
        packets = burst(rng, 20)
        survivors = injector.apply(packets)
        assert survivors == packets
        assert injector.stats.injected_events == 0
        assert injector.trace == []

    def test_gilbert_elliott_losses_cluster(self, rng):
        ge = GilbertElliottConfig(
            p_enter_burst=0.05, p_exit_burst=0.3, loss_burst=1.0
        )
        injector = FaultInjector(FaultConfig(burst=ge), seed=5)
        n = 400
        packets = burst(rng, n)
        lost_ordinals = []
        for ordinal, packet in enumerate(packets):
            before = injector.stats.lost_burst
            injector.apply_one(packet)
            if injector.stats.lost_burst > before:
                lost_ordinals.append(ordinal)
        assert injector.stats.lost_burst > 0
        # Bursty loss means consecutive losses are far more common than
        # i.i.d. loss at the same average rate would produce.
        consecutive = sum(
            1 for a, b in zip(lost_ordinals, lost_ordinals[1:]) if b == a + 1
        )
        assert consecutive >= len(lost_ordinals) // 3


class TestScope:
    def test_out_of_scope_packets_pass_and_consume_no_randomness(self, rng):
        scope = FaultScope(src=(SRC.to_int(),))
        config = FaultConfig(loss_rate=0.5, scope=scope)
        in_scope = burst(rng, 40)
        noise = [uplane(rng, slot=i % 8, src=OTHER) for i in range(40)]

        plain = FaultInjector(config, seed=9)
        for packet in in_scope:
            plain.apply_one(packet.clone())

        interleaved = FaultInjector(config, seed=9)
        for packet, extra in zip(in_scope, noise):
            interleaved.apply_one(extra)  # out of scope: no RNG draw
            interleaved.apply_one(packet.clone())

        assert interleaved.stats.silenced == 0
        assert plain.stats.lost_iid == interleaved.stats.lost_iid
        # The loss *pattern* is identical, not just the count.
        assert [t.split(":")[1] for t in plain.trace] == [
            t.split(":")[1] for t in interleaved.trace
        ]

    def test_direction_scope(self, rng):
        config = FaultConfig(
            loss_rate=1.0, scope=FaultScope(direction=Direction.UPLINK)
        )
        injector = FaultInjector(config, seed=1)
        assert injector.apply_one(cplane()) != []  # DL passes
        assert injector.apply_one(uplane(rng)) == []  # UL dies


class TestSilence:
    def test_window_kills_only_matching_source_and_slots(self, rng):
        injector = FaultInjector(seed=0)
        numerology = Numerology(mu=1)
        injector.silence(
            SRC,
            SymbolTime.from_absolute_slot(4, numerology).slot_key(),
            SymbolTime.from_absolute_slot(6, numerology).slot_key(),
        )
        for slot in range(8):
            for src, expect_dead in ((SRC, 4 <= slot < 6), (OTHER, False)):
                survivors = injector.apply_one(uplane(rng, slot=slot, src=src))
                assert (survivors == []) == expect_dead
        assert injector.stats.silenced == 2

    def test_open_ended_window_is_forever(self, rng):
        injector = FaultInjector(seed=0)
        numerology = Numerology(mu=1)
        injector.silence(
            SRC, SymbolTime.from_absolute_slot(2, numerology).slot_key()
        )
        alive = [
            injector.apply_one(uplane(rng, slot=slot)) != []
            for slot in range(6)
        ]
        assert alive == [True, True, False, False, False, False]


class TestDamage:
    def test_corrupted_survivors_reparse_or_die_on_the_wire(self, rng):
        injector = FaultInjector(
            FaultConfig(corrupt_rate=1.0, corrupt_bits=4), seed=11
        )
        n = 60
        survivors = injector.apply(burst(rng, n))
        stats = injector.stats
        assert stats.corrupted_delivered + stats.corrupt_dropped == n
        assert len(survivors) == stats.corrupted_delivered
        # Survivors are genuinely damaged but parseable packets.
        for packet in survivors:
            assert packet.pack()  # still serializable

    def test_corruption_never_touches_the_macs(self, rng):
        injector = FaultInjector(
            FaultConfig(corrupt_rate=1.0, corrupt_bits=8), seed=2
        )
        for packet in injector.apply(burst(rng, 40)):
            assert packet.eth.dst == DST
            assert packet.eth.src == SRC

    def test_truncation_yields_runts_or_wire_drops(self, rng):
        injector = FaultInjector(FaultConfig(truncate_rate=1.0), seed=4)
        n = 60
        survivors = injector.apply(burst(rng, n))
        stats = injector.stats
        assert stats.truncated_delivered + stats.truncate_dropped == n
        assert len(survivors) == stats.truncated_delivered


class TestDuplicationAndReorder:
    def test_duplicates_are_clones(self, rng):
        injector = FaultInjector(FaultConfig(duplicate_rate=1.0), seed=1)
        packet = uplane(rng)
        survivors = injector.apply_one(packet)
        assert len(survivors) == 2
        assert survivors[0].pack() == survivors[1].pack()
        assert survivors[1] is not packet

    def test_reordered_packets_release_one_burst_late(self, rng):
        injector = FaultInjector(FaultConfig(reorder_rate=1.0), seed=1)
        first, second = uplane(rng, slot=0), uplane(rng, slot=1)
        assert injector.apply([first]) == []
        out = injector.apply([second])
        # second is held too; first rides out with this burst.
        assert out == [first]
        assert injector.flush_held() == [second]
        assert injector.stats.reordered == 2
        assert injector.stats.delivered == 2

    def test_jitter_accumulates(self, rng):
        injector = FaultInjector(FaultConfig(jitter_ns=500.0), seed=1)
        injector.apply(burst(rng, 10))
        assert 0 < injector.stats.jitter_ns_total < 5000


class TestValidation:
    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            FaultConfig(loss_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(corrupt_bits=0)
        with pytest.raises(ValueError):
            GilbertElliottConfig(p_enter_burst=-0.1)

    def test_stats_accounting_balances(self, rng):
        config = FaultConfig(
            loss_rate=0.2, duplicate_rate=0.2, reorder_rate=0.2,
            corrupt_rate=0.2, truncate_rate=0.1,
        )
        injector = FaultInjector(config, seed=8)
        n = 200
        survivors = injector.apply(burst(rng, n))
        survivors += injector.flush_held()
        stats = injector.stats
        assert stats.offered == n
        assert len(survivors) == stats.delivered
        assert stats.delivered == n - stats.absorbed + stats.duplicated


def test_obs_counters_mirror_trace(rng):
    from repro.obs import Observability

    obs = Observability(enabled=True)
    injector = FaultInjector(
        FaultConfig(loss_rate=0.5), seed=6, name="w", obs=obs
    )
    injector.apply(burst(np.random.default_rng(1), 100))
    snapshot = obs.registry.snapshot()
    series = snapshot["fault_injected_total"]["series"]
    assert series.get("w,loss.iid") == injector.stats.lost_iid
    assert injector.stats.lost_iid == len(injector.trace)
