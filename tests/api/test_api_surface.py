"""The public facade is locked: breaking it is a reviewed diff, not luck.

``api_surface.txt`` snapshots every name :mod:`repro.api` exports plus
its call signature (parameter names, kinds, and default *presence* —
default values render as ``=...`` so a tweaked constant or a
3.10-vs-3.12 repr difference never churns the file).  Any drift fails
tier-1 with a unified diff; intentional surface changes regenerate the
lockfile with::

    REPRO_UPDATE_API_SURFACE=1 PYTHONPATH=src \
        python -m pytest tests/api/test_api_surface.py

and the regenerated file goes through review like any other code.
"""

from __future__ import annotations

import difflib
import inspect
import os
from pathlib import Path

import repro.api as api

LOCKFILE = Path(__file__).with_name("api_surface.txt")


def _render_params(obj) -> str:
    """``(a, b=..., *, c=...)`` — names, kinds, default presence only."""
    try:
        signature = inspect.signature(obj)
    except (TypeError, ValueError):  # pragma: no cover - C callables
        return "(...)"
    tokens = []
    star_emitted = False
    for parameter in signature.parameters.values():
        if parameter.name == "self":
            continue
        if parameter.kind is parameter.VAR_POSITIONAL:
            star_emitted = True
            tokens.append(f"*{parameter.name}")
            continue
        if parameter.kind is parameter.VAR_KEYWORD:
            tokens.append(f"**{parameter.name}")
            continue
        if parameter.kind is parameter.KEYWORD_ONLY and not star_emitted:
            star_emitted = True
            tokens.append("*")
        token = parameter.name
        if parameter.default is not parameter.empty:
            token += "=..."
        tokens.append(token)
    return "(" + ", ".join(tokens) + ")"


def render_surface() -> str:
    """The facade as text: one sorted line per exported name."""
    lines = []
    for name in sorted(api.__all__):
        obj = getattr(api, name)
        if inspect.isclass(obj):
            lines.append(f"{name}: class{_render_params(obj)}")
        elif callable(obj):
            lines.append(f"{name}: def{_render_params(obj)}")
        else:
            lines.append(f"{name}: {type(obj).__name__}")
    return "\n".join(lines) + "\n"


def test_every_export_resolves():
    missing = [name for name in api.__all__ if not hasattr(api, name)]
    assert not missing, f"__all__ names that do not resolve: {missing}"


def test_all_is_sorted_within_groups():
    """``__all__`` has no duplicates (grouping is cosmetic, dupes are
    bugs)."""
    assert len(api.__all__) == len(set(api.__all__))


def test_api_surface_matches_lockfile():
    rendered = render_surface()
    if os.environ.get("REPRO_UPDATE_API_SURFACE") == "1":
        LOCKFILE.write_text(rendered, encoding="utf-8")
    assert LOCKFILE.exists(), (
        "tests/api/api_surface.txt is missing; regenerate with "
        "REPRO_UPDATE_API_SURFACE=1"
    )
    locked = LOCKFILE.read_text(encoding="utf-8")
    if rendered != locked:
        diff = "\n".join(
            difflib.unified_diff(
                locked.splitlines(),
                rendered.splitlines(),
                fromfile="api_surface.txt (locked)",
                tofile="repro.api (current)",
                lineterm="",
            )
        )
        raise AssertionError(
            "public API surface drifted from the lockfile — if this "
            "change is intentional, regenerate with "
            "REPRO_UPDATE_API_SURFACE=1 and commit the diff:\n" + diff
        )
