"""Property tests: ScenarioSpec serialization is a lossless bijection.

Hypothesis drives random scenario trees (cells, RUs, UEs, flows, chains,
wire impairments, obs settings) through ``to_dict``/``from_dict`` and
``to_json``/``from_json``, asserting exact equality — the guarantee the
sharded runner leans on when it ships per-group specs to workers.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings

from repro.conformance.generators import scenario_specs
from repro.scale.spec import ScenarioSpec


@given(spec=scenario_specs())
@settings(max_examples=60, deadline=None)
def test_dict_round_trip_is_identity(spec):
    assert ScenarioSpec.from_dict(spec.to_dict()) == spec


@given(spec=scenario_specs())
@settings(max_examples=60, deadline=None)
def test_json_round_trip_is_identity(spec):
    assert ScenarioSpec.from_json(spec.to_json()) == spec


@given(spec=scenario_specs())
@settings(max_examples=60, deadline=None)
def test_to_dict_is_pure_json(spec):
    # Whatever to_dict emits must survive a JSON encode/decode untouched
    # (no tuples-vs-lists drift, no non-string keys, no NaN).
    data = spec.to_dict()
    assert json.loads(json.dumps(data)) == json.loads(json.dumps(data))
    assert ScenarioSpec.from_dict(json.loads(json.dumps(data))) == spec


@given(spec=scenario_specs())
@settings(max_examples=30, deadline=None)
def test_unknown_top_level_key_rejected(spec):
    data = spec.to_dict()
    data["surprise"] = 1
    with pytest.raises(KeyError, match="unknown keys"):
        ScenarioSpec.from_dict(data)


@given(spec=scenario_specs())
@settings(max_examples=30, deadline=None)
def test_unknown_nested_key_rejected(spec):
    data = spec.to_dict()
    data["cells"][0]["firmware"] = "v2"
    with pytest.raises(KeyError, match="unknown keys"):
        ScenarioSpec.from_dict(data)


@given(spec=scenario_specs())
@settings(max_examples=30, deadline=None)
def test_round_trip_preserves_conformance_flag(spec):
    # The obs.conformance toggle added for the validator must ship to
    # workers like every other field.
    again = ScenarioSpec.from_dict(spec.to_dict())
    assert again.obs.conformance == spec.obs.conformance
    flipped = dataclasses.replace(
        spec, obs=dataclasses.replace(spec.obs, conformance=not spec.obs.conformance)
    )
    assert ScenarioSpec.from_dict(flipped.to_dict()).obs.conformance == (
        not spec.obs.conformance
    )
