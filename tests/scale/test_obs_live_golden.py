"""obs-live smoke: the streamed 8-cell run pinned to golden bytes.

This is the CI obs-live gate in test form: one sharded run of the
canonical 8-cell topology with the full telemetry plane streaming, whose
deterministic exposition must match the checked-in golden fixture byte
for byte, and whose SLO engine must emit the exact seeded alert edges.
``run_obs_top`` additionally asserts, internally, that the digest equals
an observability-off reference and that the live-folded snapshot equals
the end-of-run ``collect()``.

Regenerate the fixture (after an intentional metrics change) with::

    PYTHONPATH=src python - <<'PY'
    from repro.eval.obs_top import run_obs_top
    text = run_obs_top(slots=16, workers=4).golden_exposition()
    open("tests/scale/fixtures/obs_top_exposition.golden", "w").write(text)
    PY
"""

from pathlib import Path

import pytest

from repro.eval.obs_top import run_obs_top

GOLDEN = Path(__file__).parent / "fixtures" / "obs_top_exposition.golden"
SLOTS = 16
WORKERS = 4


@pytest.fixture(scope="module")
def obs_top_result():
    return run_obs_top(slots=SLOTS, workers=WORKERS)


def test_streamed_exposition_matches_golden(obs_top_result):
    golden = GOLDEN.read_text()
    exposition = obs_top_result.golden_exposition()
    assert exposition == golden, (
        "streamed deterministic exposition drifted from the golden "
        "fixture; if the change is intentional, regenerate it (see "
        "module docstring)"
    )


def test_streamed_run_contract(obs_top_result):
    assert obs_top_result.digests_match
    assert obs_top_result.epochs == SLOTS // 4
    assert obs_top_result.spans_seen > 0
    assert obs_top_result.bus_epoch_records > 0


def test_seeded_slo_alerts_fire_deterministically(obs_top_result):
    """The canonical run trips both default SLOs at fixed epochs."""
    edges = [
        (a["slo"], a["state"], a["epoch"]) for a in obs_top_result.alerts
    ]
    assert edges == [
        ("deadline-miss-rate", "firing", 0),
        ("p99-slot-latency", "firing", 1),
    ]
