"""The self-healing pool: exact recovery, bounded failure, no leaks."""

import os
import signal
import time

import pytest
from multiprocessing import shared_memory

from repro.obs.slo import OBJECTIVES
from repro.scale import (
    ScenarioSpec,
    SupervisedWorkerPool,
    SupervisorSpec,
    run_scenario,
)
from repro.scale.pool import _env_join_timeout
from repro.scale.supervisor import (
    RESTARTS_METRIC,
    ShardRecoveryExhausted,
)

#: Tight supervision so failure tests conclude in seconds, not minutes.
FAST_SUPERVISOR = {
    "barrier_timeout_s": 2.0,
    "poll_interval_s": 0.01,
    "max_restarts_per_worker": 2,
    "backoff_base_s": 0.01,
    "backoff_factor": 2.0,
}


def _spec_dict(slots=6, chaos=(), supervisor=FAST_SUPERVISOR, obs=True,
               slo=()):
    return {
        "name": "supervised",
        "slots": slots,
        "seed": 9,
        "epoch_slots": 2,
        "process_chaos": [dict(entry) for entry in chaos],
        "supervisor": dict(supervisor) if supervisor else None,
        "obs": (
            {
                "enabled": True,
                "stream": True,
                "deadline_accounting": True,
                "slo": [dict(entry) for entry in slo],
            }
            if obs
            else {"enabled": False}
        ),
        "cells": [
            {
                "name": "left",
                "pci": 1,
                "bandwidth_hz": 20_000_000,
                "rus": [{"name": "left-ru1"}, {"name": "left-ru2"}],
                "ues": [
                    {
                        "ue_id": "u1",
                        "flows": [
                            {"kind": "cbr", "rate_mbps": 30,
                             "direction": "dl"}
                        ],
                    }
                ],
                "chain": [
                    {"stage": "das", "params": {"partial_merge": True}}
                ],
            },
            {
                "name": "right",
                "pci": 2,
                "bandwidth_hz": 20_000_000,
                "rus": [{"name": "right-ru1"}],
                "ues": [
                    {
                        "ue_id": "u2",
                        "flows": [
                            {"kind": "poisson", "rate_mbps": 10,
                             "direction": "ul", "seed": 4}
                        ],
                    }
                ],
                "chain": [{"stage": "prb_monitor"}],
            },
        ],
    }


def _spec(**kwargs):
    return ScenarioSpec.from_dict(_spec_dict(**kwargs))


def _reference(slots=6):
    return run_scenario(
        _spec(slots=slots, chaos=(), supervisor=None), workers=2
    )


def _assert_no_segment(name):
    assert name is not None
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)


@pytest.mark.parametrize(
    "kind,epoch",
    [("kill", 1), ("stall", 0), ("poison", 2), ("corrupt_frame", 1)],
)
def test_recovery_is_exact_for_every_failure_class(kind, epoch):
    """Digest oracle: the recovered run equals the unfaulted one, and the
    reconciled telemetry still satisfies live == collect bit for bit."""
    reference = _reference()
    chaos = [{"kind": kind, "epoch": epoch, "group": "left",
              "stall_s": 30.0}]
    recovered = run_scenario(_spec(chaos=chaos), workers=2)
    assert recovered.digest == reference.digest
    assert recovered.timeline() == reference.timeline()
    assert recovered.recovery["total_restarts"] >= 1
    assert recovered.recovery["failures"], "failure log must not be empty"
    assert (
        recovered.telemetry.live_snapshot()
        == recovered.metrics().snapshot()
    )


def test_external_sigkill_mid_run_recovers():
    """A worker killed from outside (not self-inflicted chaos) is
    detected at the next barrier and replaced."""
    spec = _spec(chaos=())
    reference = _reference()
    with SupervisedWorkerPool(spec, workers=2) as pool:
        os.kill(pool._processes[0].pid, signal.SIGKILL)
        result = pool.run()
    assert result.digest == reference.digest
    assert result.recovery["total_restarts"] >= 1
    assert result.recovery["restarts"].get("0") == 1


def test_pool_reuse_after_recovery():
    """A pool that healed once serves later runs with clean state."""
    spec = _spec(chaos=())
    with SupervisedWorkerPool(spec, workers=2) as pool:
        os.kill(pool._processes[1].pid, signal.SIGKILL)
        first = pool.run()
        second = pool.run()
    assert first.recovery["total_restarts"] == 1
    assert second.recovery["total_restarts"] == 0
    assert first.digest == second.digest


def test_recovery_surfaces_in_obs_plane():
    """Restarts count in the coordinator metrics registry, ride the
    epoch samples, and can fire a declarative SLO objective."""
    assert "worker_restarts" in OBJECTIVES
    chaos = [{"kind": "kill", "epoch": 0, "group": "left"}]
    slo = [{"name": "restart-burn", "objective": "worker_restarts",
            "threshold": 1.0, "window_epochs": 4}]
    spec = _spec(chaos=chaos, slo=slo)
    with SupervisedWorkerPool(spec, workers=2) as pool:
        result = pool.run()
        snapshot = pool.metrics.snapshot()
    assert RESTARTS_METRIC in snapshot
    assert sum(snapshot[RESTARTS_METRIC]["series"].values()) >= 1
    assert result.telemetry.worker_restarts_total >= 1
    edges = [(a.slo, a.state) for a in result.telemetry.slo.alerts]
    assert ("restart-burn", "firing") in edges


def test_budget_exhaustion_fails_typed_bounded_and_clean():
    """A re-arming kill outlives its budget: typed error with partial
    results, in bounded time, zero leaked segments, no live workers."""
    chaos = [{"kind": "kill", "epoch": 1, "group": "left", "rearm": True}]
    supervisor = dict(FAST_SUPERVISOR, max_restarts_per_worker=1)
    spec = _spec(chaos=chaos, supervisor=supervisor, obs=False)
    pool = SupervisedWorkerPool(spec, workers=2)
    pool.start()
    segment = pool.arena_name
    started = time.monotonic()
    with pytest.raises(ShardRecoveryExhausted) as excinfo:
        pool.run()
    elapsed = time.monotonic() - started
    error = excinfo.value
    assert error.shard_groups == ["left"]
    assert error.restarts == 1
    assert len(error.failures) == 2  # original + the re-armed recurrence
    assert "right" in error.partial  # the healthy shard's data survives
    assert elapsed < 30.0
    _assert_no_segment(segment)
    assert not any(process.is_alive() for process in pool._processes)


def test_sigkill_mid_epoch_cleanup_without_supervision():
    """The plain fail-fast path still tears down inside the deadline: a
    SIGKILLed worker surfaces as an error (no indefinite hang) and the
    segment is unlinked."""
    from repro.scale.pool import WorkerPool

    spec = _spec(chaos=(), supervisor=None, obs=False)
    pool = WorkerPool(spec, workers=2)
    pool.start()
    segment = pool.arena_name
    os.kill(pool._processes[0].pid, signal.SIGKILL)
    started = time.monotonic()
    with pytest.raises(RuntimeError, match="died mid-command"):
        pool.run()
    assert time.monotonic() - started < 30.0
    _assert_no_segment(segment)


def test_unsupervised_spec_with_chaos_routes_to_supervised_pool():
    """run_scenario picks the self-healing pool whenever the spec
    carries chaos injections, even without an explicit supervisor."""
    chaos = [{"kind": "kill", "epoch": 0, "group": "right"}]
    data = _spec_dict(chaos=chaos, supervisor=None)
    spec = ScenarioSpec.from_dict(data)
    assert spec.supervised()
    result = run_scenario(spec, workers=2)
    assert result.recovery["total_restarts"] >= 1
    assert result.digest == _reference().digest


def test_supervisor_spec_round_trip_and_validation():
    spec = _spec()
    assert ScenarioSpec.from_dict(spec.to_dict()) == spec
    with pytest.raises(ValueError):
        SupervisorSpec(barrier_timeout_s=0.0)
    with pytest.raises(ValueError):
        SupervisorSpec(max_restarts_per_worker=-1)
    with pytest.raises(ValueError):
        SupervisorSpec(backoff_factor=0.5)
    with pytest.raises(KeyError):
        SupervisorSpec.from_dict({"barrier_timeout_s": 1.0, "nope": 2})


def test_join_timeout_env_parsing(monkeypatch):
    monkeypatch.delenv("REPRO_SCALE_JOIN_TIMEOUT", raising=False)
    assert _env_join_timeout(7.0) == 7.0
    monkeypatch.setenv("REPRO_SCALE_JOIN_TIMEOUT", "2.5")
    assert _env_join_timeout(7.0) == 2.5
    monkeypatch.setenv("REPRO_SCALE_JOIN_TIMEOUT", "not-a-number")
    assert _env_join_timeout(7.0) == 7.0
    monkeypatch.setenv("REPRO_SCALE_JOIN_TIMEOUT", "-3")
    assert _env_join_timeout(7.0) == 7.0
