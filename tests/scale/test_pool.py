"""The persistent worker pool: reuse, accounting, and cleanup guarantees."""

import os

import pytest
from multiprocessing import shared_memory

from repro.core.middlebox import Middlebox
from repro.scale import (
    Scenario,
    ScenarioSpec,
    WorkerPool,
    register_stage,
)
from repro.scale.registry import STAGE_REGISTRY


def _spec_dict(slots=4, **overrides):
    data = {
        "name": "pool-smoke",
        "slots": slots,
        "seed": 9,
        "cells": [
            {
                "name": "left",
                "pci": 1,
                "bandwidth_hz": 20_000_000,
                "rus": [{"name": "left-ru1"}, {"name": "left-ru2"}],
                "ues": [
                    {
                        "ue_id": "u1",
                        "flows": [
                            {"kind": "cbr", "rate_mbps": 30,
                             "direction": "dl"}
                        ],
                    }
                ],
                "chain": [
                    {"stage": "das", "params": {"partial_merge": True}}
                ],
            },
            {
                "name": "right",
                "pci": 2,
                "bandwidth_hz": 20_000_000,
                "rus": [{"name": "right-ru1"}],
                "ues": [
                    {
                        "ue_id": "u2",
                        "flows": [
                            {"kind": "poisson", "rate_mbps": 10,
                             "direction": "ul", "seed": 4}
                        ],
                    }
                ],
                "chain": [{"stage": "prb_monitor"}],
            },
        ],
    }
    data.update(overrides)
    return data


def _spec(slots=4, **overrides):
    return ScenarioSpec.from_dict(_spec_dict(slots=slots, **overrides))


def _assert_no_segment(name):
    assert name is not None
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)


class CrashingMiddlebox(Middlebox):
    """Kills its whole worker process after a few packets."""

    app_name = "crashbox"

    def __init__(self, crash_after=3, **kwargs):
        super().__init__(**kwargs)
        self._remaining = crash_after

    def on_uplane(self, ctx, packet):
        self._remaining -= 1
        if self._remaining <= 0:
            os._exit(13)
        ctx.forward(packet)


if "crashbox" not in STAGE_REGISTRY:
    @register_stage("crashbox")
    def _build_crashbox(stage, ctx):
        return CrashingMiddlebox(
            crash_after=stage.params.get("crash_after", 3),
            **ctx.base_kwargs(stage, ctx.cell()),
        )


def test_pool_reuses_live_workers_across_runs():
    spec = _spec()
    single = Scenario(spec).run(workers=1)
    with WorkerPool(spec, workers=2) as pool:
        pids_before = [process.pid for process in pool._processes]
        first = pool.run()
        second = pool.run()
        pids_after = [process.pid for process in pool._processes]
    # Same digest as single-process on both runs, same worker processes.
    assert first.digest == single.digest
    assert second.digest == single.digest
    assert first.timeline() == single.timeline()
    assert pids_before == pids_after


def test_sharded_group_results_report_executed_slots():
    """Regression: the old collect path reported the report-list length
    instead of the slots the worker actually stepped."""
    spec = _spec(slots=5, epoch_slots=2)
    result = Scenario(spec).run(workers=2)
    for group in result.groups.values():
        assert group.slots == spec.slots
        assert group.events >= spec.slots  # at least one event per slot
    # And the same accounting holds single-process.
    inline = Scenario(spec).run(workers=1)
    for group in inline.groups.values():
        assert group.slots == spec.slots
        assert group.events >= spec.slots


def test_epoch_barriers_preserve_digest_at_every_cadence():
    reference = Scenario(_spec()).run(workers=1)
    for epoch_slots in (1, 2, 3, None):
        sharded = Scenario(
            _spec(epoch_slots=epoch_slots)
        ).run(workers=2)
        assert sharded.digest == reference.digest
        expected = epoch_slots or 4
        assert sharded.transport["epoch_slots"] == expected
        assert sharded.transport["epochs"] == -(-4 // expected)


def test_transport_moves_results_through_the_arena():
    result = Scenario(_spec()).run(workers=2)
    assert result.transport["arena_payloads"] >= 2  # one collect per worker
    assert result.transport["arena_bytes"] > 0
    assert result.transport["pipe_fallback_payloads"] == 0


def test_undersized_arena_falls_back_to_pipe_without_corruption():
    # Obs + conformance fatten the collect payload past a 4 KiB ring.
    obs = {"enabled": True, "conformance": True}
    reference = Scenario(_spec(slots=6, obs=obs)).run(workers=1)
    starved = Scenario(
        _spec(slots=6, obs=obs, arena_bytes_per_worker=4096)
    ).run(workers=2)
    assert starved.digest == reference.digest
    assert starved.transport["pipe_fallback_payloads"] >= 1
    for name, group in reference.groups.items():
        assert starved.groups[name].digest == group.digest


def test_normal_exit_leaves_no_workers_or_segments():
    pool = WorkerPool(_spec(), workers=2).start()
    name = pool.arena_name
    processes = list(pool._processes)
    pool.run()
    pool.close()
    assert all(not process.is_alive() for process in processes)
    _assert_no_segment(name)


def test_close_is_idempotent_and_start_after_close_refuses():
    pool = WorkerPool(_spec(), workers=2).start()
    pool.close()
    pool.close()
    with pytest.raises(RuntimeError):
        pool.start()


def test_worker_crash_mid_run_cleans_up_processes_and_segment():
    """A fault-injected worker death surfaces as an error AND still tears
    down every process, pipe, and shared-memory segment."""
    data = _spec_dict(slots=6, epoch_slots=1)
    data["cells"][1]["chain"] = [
        {"stage": "crashbox", "params": {"crash_after": 2}}
    ]
    # The crashing cell needs uplink traffic for on_uplane to fire.
    data["cells"][1]["ues"][0]["flows"].append(
        {"kind": "cbr", "rate_mbps": 20, "direction": "ul"}
    )
    pool = WorkerPool(ScenarioSpec.from_dict(data), workers=2).start()
    name = pool.arena_name
    processes = list(pool._processes)
    with pytest.raises(RuntimeError, match="died mid-command"):
        pool.run()
    # run() closed the pool on the error path: nothing left behind.
    assert all(not process.is_alive() for process in processes)
    _assert_no_segment(name)


def test_coordinator_exception_mid_run_still_tears_down(monkeypatch):
    """An error on the coordinator side (not in any worker) must also
    exit workers and unlink the segment."""
    pool = WorkerPool(_spec(slots=4, epoch_slots=1), workers=2).start()
    name = pool.arena_name
    processes = list(pool._processes)
    calls = {"n": 0}
    original = WorkerPool._read_bulk

    def explode(self, index, descriptor):
        calls["n"] += 1
        if calls["n"] >= 2:
            raise OSError("synthetic coordinator fault")
        return original(self, index, descriptor)

    monkeypatch.setattr(WorkerPool, "_read_bulk", explode)
    with pytest.raises(OSError, match="synthetic coordinator fault"):
        pool.run()
    assert all(not process.is_alive() for process in processes)
    _assert_no_segment(name)


def test_build_failure_in_worker_propagates_with_traceback():
    data = _spec_dict()
    data["cells"][1]["chain"] = [
        {"stage": "resilience", "params": {"standby": "missing"}}
    ]
    pool = WorkerPool(ScenarioSpec.from_dict(data), workers=2)
    name_holder = {}
    with pytest.raises(RuntimeError, match="scale worker failed"):
        with pool:
            name_holder["name"] = pool.arena_name
            pool.run()
    _assert_no_segment(name_holder["name"])


def test_dropped_pool_is_reaped_by_finalizer():
    pool = WorkerPool(_spec(), workers=2).start()
    name = pool.arena_name
    processes = list(pool._processes)
    pool._finalizer()  # what gc would invoke for an abandoned pool
    _assert_no_segment(name)
    for process in processes:
        process.join(timeout=10)
        assert not process.is_alive()
