"""The sharding contract: any worker count, byte-identical results."""

import os

import pytest

from repro.scale import Scenario, ScenarioSpec, plan_shards, run

FIXTURE = os.path.join(
    os.path.dirname(__file__), "fixtures", "bench_8cell.json"
)


def _smoke_spec(slots=3, batch_slots=None):
    return ScenarioSpec.from_dict(
        {
            "name": "smoke",
            "slots": slots,
            "seed": 9,
            "batch_slots": batch_slots,
            "cells": [
                {
                    "name": "left",
                    "pci": 1,
                    "bandwidth_hz": 20_000_000,
                    "rus": [{"name": "left-ru1"}, {"name": "left-ru2"}],
                    "ues": [
                        {
                            "ue_id": "u1",
                            "flows": [
                                {"kind": "cbr", "rate_mbps": 30,
                                 "direction": "dl"}
                            ],
                        }
                    ],
                    "chain": [
                        {"stage": "das", "params": {"partial_merge": True}}
                    ],
                },
                {
                    "name": "right",
                    "pci": 2,
                    "bandwidth_hz": 20_000_000,
                    "rus": [{"name": "right-ru1"}],
                    "ues": [
                        {
                            "ue_id": "u2",
                            "flows": [
                                {"kind": "poisson", "rate_mbps": 10,
                                 "direction": "ul", "seed": 4}
                            ],
                        }
                    ],
                    "chain": [{"stage": "prb_monitor"}],
                },
            ],
        }
    )


def test_two_worker_run_matches_single_process():
    scenario = Scenario(_smoke_spec())
    single = scenario.run(workers=1)
    sharded = scenario.run(workers=2)
    assert sharded.workers == 2
    assert sharded.digest == single.digest
    assert sharded.timeline() == single.timeline()
    for name, group in single.groups.items():
        assert sharded.groups[name].digest == group.digest
        assert sharded.groups[name].reports == group.reports
        assert sharded.groups[name].cell_counters == group.cell_counters


def test_batch_barrier_does_not_change_results():
    free_run = Scenario(_smoke_spec()).run(workers=2)
    batched = Scenario(_smoke_spec(batch_slots=1)).run(workers=2)
    assert batched.digest == free_run.digest


def test_run_accepts_dict_and_json():
    spec = _smoke_spec(slots=1)
    from_dict = run(spec.to_dict())
    from_json = run(spec.to_json())
    assert from_dict.digest == from_json.digest


def test_timeline_is_merge_order_deterministic():
    result = Scenario(_smoke_spec()).run(workers=2)
    timeline = result.timeline()
    assert timeline == sorted(timeline, key=lambda e: (e[0], e[1], e[2]))
    labels = {entry[3] for entry in timeline}
    assert "left/slot0" in labels and "right/slot2" in labels


def test_merged_metrics_match_single_process_counts():
    spec = _smoke_spec()
    obs_spec = ScenarioSpec.from_dict(
        {**spec.to_dict(), "obs": {"enabled": True}}
    )
    single = Scenario(obs_spec).run(workers=1)
    sharded = Scenario(obs_spec).run(workers=2)
    snap_single = single.metrics().snapshot()
    snap_sharded = sharded.metrics().snapshot()
    assert snap_single.keys() == snap_sharded.keys()
    # Deterministic families must merge to the exact same series; only
    # wall-clock histograms may differ between runs.
    for name in ("middlebox_packets_total", "engine_events_total"):
        assert snap_sharded[name] == snap_single[name]


def test_worker_failure_propagates():
    spec = _smoke_spec(slots=2)
    broken = spec.to_dict()
    # An RU-sharing stage whose guest spectrum cannot fit raises in the
    # worker's build; the coordinator must surface it, not hang.
    broken["cells"][1]["chain"] = [
        {"stage": "resilience", "params": {"standby": "missing"}}
    ]
    with pytest.raises((RuntimeError, KeyError)):
        run(broken, workers=2)


def test_plan_never_splits_coupling_groups():
    data = _smoke_spec().to_dict()
    data["cells"][0]["group"] = "pair"
    data["cells"][1]["group"] = "pair"
    spec = ScenarioSpec.from_dict(data)
    plan = plan_shards(spec, workers=4)
    assert plan.workers == 1  # one atomic group -> one shard
    assert plan.touchpoints == {"pair": ["left", "right"]}


def test_epoch_slots_does_not_change_results():
    reference = Scenario(_smoke_spec(slots=5)).run(workers=2)
    for epoch_slots in (1, 2, 5):
        data = {**_smoke_spec(slots=5).to_dict(), "epoch_slots": epoch_slots}
        result = Scenario(ScenarioSpec.from_dict(data)).run(workers=2)
        assert result.digest == reference.digest
        assert result.transport["epoch_slots"] == epoch_slots


def test_epoch_and_arena_knobs_round_trip_json():
    data = {
        **_smoke_spec().to_dict(),
        "epoch_slots": 7,
        "arena_bytes_per_worker": 65536,
    }
    spec = ScenarioSpec.from_dict(data)
    rebuilt = ScenarioSpec.from_json(spec.to_json())
    assert rebuilt.epoch_slots == 7
    assert rebuilt.arena_bytes_per_worker == 65536
    assert rebuilt.to_dict() == spec.to_dict()
    assert rebuilt.effective_epoch_slots() == 7


def test_golden_fixture_digest_identical_at_all_worker_counts():
    """The PR 4 oracle on the 8-cell bench topology: sharded executions
    at every benchmarked worker count reproduce the single-process run
    byte for byte, under the default coarse epoch."""
    scenario = Scenario.from_file(FIXTURE)
    single = scenario.run(workers=1)
    for workers in (2, 4, 8):
        sharded = scenario.run(workers=workers)
        assert sharded.digest == single.digest, (
            f"digest diverged at workers={workers}"
        )
        # Coarse default epoch: the whole horizon in one barrier.
        assert sharded.transport["epochs"] == 1
        assert sharded.transport["epoch_slots"] == scenario.spec.slots
        assert sharded.transport["pipe_fallback_payloads"] == 0


def test_plan_is_deterministic_lpt():
    spec = Scenario(_smoke_spec()).spec
    first = plan_shards(spec, 2)
    second = plan_shards(spec, 2)
    assert first.shards == second.shards
    assert {name for shard in first.shards for name in shard} == {
        "left", "right",
    }
