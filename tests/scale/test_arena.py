"""The shared-memory arena: ring discipline, exhaustion, round-trips."""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scale.arena import (
    ArenaFrameError,
    ArenaFullError,
    RingBuffer,
    SharedArena,
    payload_nbytes,
    payload_watermark,
    read_payload,
    validate_descriptor,
    write_payload,
)


def _ring(capacity=64):
    return RingBuffer(memoryview(bytearray(capacity)))


class TestRingBuffer:
    def test_write_then_view_round_trips(self):
        ring = _ring()
        extent = ring.write(b"hello arena")
        offset, nbytes, mark = extent
        assert bytes(ring.view(offset, nbytes)) == b"hello arena"
        assert mark == ring.head == len(b"hello arena")

    def test_wraparound_allocates_contiguously_from_start(self):
        ring = _ring(64)
        first = ring.write(b"a" * 40)
        ring.release_until(first[2])
        # 24 B remain at the end of the region; a 32 B write must wrap.
        second = ring.write(b"b" * 32)
        assert second[0] == 0  # physical offset restarted
        assert bytes(ring.view(second[0], second[1])) == b"b" * 32
        # The wrap padding (24 B) plus the payload advanced the head.
        assert second[2] == 40 + 24 + 32

    def test_wraparound_sustains_many_epochs(self):
        """Alternating write/ack crosses the seam many times unscathed."""
        ring = _ring(64)
        for epoch in range(100):
            payload = bytes([epoch % 251]) * (17 + epoch % 19)
            extent = ring.write(payload)
            assert bytes(ring.view(extent[0], extent[1])) == payload
            ring.release_until(extent[2])
        assert ring.used == 0

    def test_full_ring_raises_not_corrupts(self):
        ring = _ring(64)
        keep = ring.write(b"k" * 48)
        with pytest.raises(ArenaFullError):
            ring.write(b"x" * 32)  # 16 B free: wraps are no escape
        # The committed payload is untouched by the failed allocation.
        assert bytes(ring.view(keep[0], keep[1])) == b"k" * 48
        assert ring.head == keep[2]

    def test_oversized_payload_raises_even_on_empty_ring(self):
        with pytest.raises(ArenaFullError):
            _ring(64).alloc(65)

    def test_release_cannot_pass_the_head(self):
        ring = _ring(64)
        ring.write(b"abc")
        with pytest.raises(ValueError):
            ring.release_until(99)

    def test_unreleased_tail_blocks_reuse(self):
        ring = _ring(64)
        ring.write(b"a" * 30)  # never acked
        with pytest.raises(ArenaFullError):
            ring.write(b"b" * 40)


class TestPayloadFraming:
    def test_plain_data_round_trip(self):
        ring = _ring(4096)
        payload = {"reports": [1, 2.5, "three"], "nested": {"k": (1, 2)}}
        descriptor = write_payload(ring, payload)
        assert read_payload(ring, descriptor) == payload
        assert payload_watermark(descriptor) == ring.head
        assert payload_nbytes(descriptor) > 0

    def test_numpy_arrays_travel_out_of_band_as_views(self):
        ring = _ring(8192)
        batch = [np.arange(64, dtype=np.int16), np.ones(32, dtype=np.float64)]
        descriptor = write_payload(ring, batch)
        main_extent, buffer_extents = descriptor
        assert len(buffer_extents) == 2  # one raw extent per array
        assert sum(n for _, n, _ in buffer_extents) == 64 * 2 + 32 * 8
        restored = read_payload(ring, descriptor)
        np.testing.assert_array_equal(restored[0], batch[0])
        np.testing.assert_array_equal(restored[1], batch[1])
        # Out-of-band buffers alias the ring until released: mutating the
        # ring bytes is visible through the restored array (zero-copy).
        offset = buffer_extents[0][0]
        ring.view(offset, 2)[:] = np.int16(999).tobytes()
        assert restored[0][0] == 999

    def test_payload_too_big_raises_before_writing(self):
        ring = _ring(4096)
        ring.write(b"x" * 4000)
        head = ring.head
        with pytest.raises(ArenaFullError):
            write_payload(ring, b"y" * 2000)
        assert ring.head == head  # nothing was committed


@st.composite
def packet_batches(draw):
    """Packet-batch-shaped payloads: section dicts with raw IQ arrays."""
    n_packets = draw(st.integers(min_value=0, max_value=6))
    batch = []
    for index in range(n_packets):
        n_prbs = draw(st.integers(min_value=1, max_value=16))
        iq = draw(
            st.binary(min_size=n_prbs * 48, max_size=n_prbs * 48)
        )
        batch.append(
            {
                "eaxc": draw(st.integers(min_value=0, max_value=7)),
                "seq": index,
                "start_prb": draw(st.integers(min_value=0, max_value=200)),
                "iq": np.frombuffer(iq, dtype=np.int16).reshape(n_prbs, 24),
                "payload": iq,
            }
        )
    return batch


def _assert_batches_identical(restored, via_pickle):
    """Compare in a scope of their own so arena views die on return."""
    assert len(restored) == len(via_pickle)
    for ours, theirs in zip(restored, via_pickle):
        assert ours["payload"] == theirs["payload"]
        np.testing.assert_array_equal(ours["iq"], theirs["iq"])
        assert ours["iq"].tobytes() == theirs["iq"].tobytes()
        for key in ("eaxc", "seq", "start_prb"):
            assert ours[key] == theirs[key]


@given(batch=packet_batches())
@settings(max_examples=40, deadline=None)
def test_arena_round_trip_matches_pickle_path_byte_for_byte(batch):
    """The arena transport is a drop-in for pipe pickling: byte-identical."""
    arena = SharedArena.create(workers=1, bytes_per_worker=64 * 1024)
    try:
        ring = arena.ring(0)
        _assert_batches_identical(
            read_payload(ring, write_payload(ring, batch)),
            pickle.loads(pickle.dumps(batch, protocol=5)),
        )
    finally:
        arena.close()
        arena.unlink()


class TestSharedArena:
    def test_regions_are_isolated_per_worker(self):
        arena = SharedArena.create(workers=2, bytes_per_worker=4096)
        try:
            first, second = arena.ring(0), arena.ring(1)
            a = first.write(b"A" * 64)
            b = second.write(b"B" * 64)
            assert bytes(first.view(a[0], a[1])) == b"A" * 64
            assert bytes(second.view(b[0], b[1])) == b"B" * 64
        finally:
            arena.close()
            arena.unlink()

    def test_attach_sees_creator_bytes(self):
        arena = SharedArena.create(workers=1, bytes_per_worker=4096)
        try:
            extent = arena.ring(0).write(b"shared!")
            other = SharedArena.attach(arena.name, 1, 4096)
            try:
                view = other.ring(0).view(extent[0], extent[1])
                assert bytes(view) == b"shared!"
                del view
            finally:
                other.close()
        finally:
            arena.close()
            arena.unlink()

    def test_unlink_is_idempotent_and_removes_segment(self):
        from multiprocessing import shared_memory

        arena = SharedArena.create(workers=1, bytes_per_worker=4096)
        name = arena.name
        arena.close()
        arena.unlink()
        arena.unlink()  # second call is a no-op, not an error
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            SharedArena.create(workers=0, bytes_per_worker=4096)
        with pytest.raises(ValueError):
            SharedArena.create(workers=1, bytes_per_worker=16)
        arena = SharedArena.create(workers=1, bytes_per_worker=4096)
        try:
            with pytest.raises(IndexError):
                arena.ring(1)
        finally:
            arena.close()
            arena.unlink()


class TestValidateDescriptor:
    """Descriptor bounds checks: corrupted frames never reach pickle."""

    def test_accepts_every_legitimate_frame(self):
        ring = _ring(4096)
        released = 0
        for payload in [b"x" * 100, {"k": np.arange(64)}, list(range(50))]:
            descriptor = write_payload(ring, payload)
            assert validate_descriptor(ring, descriptor, released) is descriptor
            released = payload_watermark(descriptor)
            ring.release_until(released)

    def test_accepts_wrap_padded_frame_beyond_one_capacity(self):
        # A frame written after wrap padding may carry a watermark up to
        # (but never reaching) released + 2*capacity.
        ring = _ring(128)
        first = write_payload(ring, b"a" * 80)
        released = payload_watermark(first)
        ring.release_until(released)
        second = write_payload(ring, b"b" * 90)  # wraps: mark > released+128
        assert payload_watermark(second) - released > ring.capacity
        validate_descriptor(ring, second, released)

    @pytest.mark.parametrize(
        "descriptor",
        [
            None,
            (1, 2, 3),
            ((0, 8),),
            ((0, 8, 8), None),
            ((0.5, 8, 8), ()),
            ((0, True, 8), ()),
            "garbage",
        ],
    )
    def test_rejects_malformed_shapes(self, descriptor):
        ring = _ring(64)
        with pytest.raises(ArenaFrameError):
            validate_descriptor(ring, descriptor)

    def test_rejects_out_of_ring_extents(self):
        ring = _ring(64)
        with pytest.raises(ArenaFrameError):
            validate_descriptor(ring, ((0, 65, 65), ()))  # too long
        with pytest.raises(ArenaFrameError):
            validate_descriptor(ring, ((-1, 8, 8), ()))  # negative offset
        with pytest.raises(ArenaFrameError):
            validate_descriptor(ring, ((0, 8, 8), ((60, 8, 8),)))  # oob extent

    def test_rejects_stale_and_far_future_watermarks(self):
        ring = _ring(64)
        with pytest.raises(ArenaFrameError):
            validate_descriptor(ring, ((0, 8, 8), ()), released=8)  # stale
        with pytest.raises(ArenaFrameError):
            validate_descriptor(ring, ((0, 8, 200), ()), released=8)  # future

    def test_rejects_empty_in_band_frame(self):
        ring = _ring(64)
        with pytest.raises(ArenaFrameError):
            validate_descriptor(ring, ((0, 0, 8), ()))

    def test_corrupt_descriptor_helper_is_always_rejected(self):
        from repro.faults.process import corrupt_descriptor

        ring = _ring(4096)
        descriptor = write_payload(ring, {"iq": np.arange(128)})
        with pytest.raises(ArenaFrameError):
            validate_descriptor(ring, corrupt_descriptor(descriptor))
        with pytest.raises(ArenaFrameError):
            validate_descriptor(ring, corrupt_descriptor(None))
