"""Scenario spec round-trips: dict -> spec -> dict -> spec -> build."""

import json
import os

import pytest

from repro.scale import Scenario, ScenarioSpec
from repro.scale.spec import CellSpec, RuSpec

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures", "bench_8cell.json")


def _tiny_spec_dict(**overrides):
    data = {
        "name": "tiny",
        "slots": 3,
        "seed": 5,
        "cells": [
            {
                "name": "alpha",
                "pci": 1,
                "bandwidth_hz": 20_000_000,
                "rus": [{"name": "alpha-ru1"}, {"name": "alpha-ru2"}],
                "ues": [
                    {
                        "ue_id": "u1",
                        "flows": [
                            {"kind": "cbr", "rate_mbps": 30, "direction": "dl"},
                            {"kind": "poisson", "rate_mbps": 5,
                             "direction": "ul", "seed": 2},
                        ],
                    }
                ],
                "chain": [{"stage": "das", "params": {"partial_merge": True}}],
            },
            {
                "name": "beta",
                "pci": 2,
                "bandwidth_hz": 20_000_000,
                "profile": "CapGemini",
                "rus": [{"name": "beta-ru1"}],
                "chain": [{"stage": "prb_monitor"}],
            },
        ],
    }
    data.update(overrides)
    return data


def test_dict_round_trip_is_exact():
    spec = ScenarioSpec.from_dict(_tiny_spec_dict())
    again = ScenarioSpec.from_dict(spec.to_dict())
    assert again == spec
    assert again.to_dict() == spec.to_dict()


def test_json_round_trip_is_exact():
    spec = ScenarioSpec.from_dict(_tiny_spec_dict())
    assert ScenarioSpec.from_json(spec.to_json()) == spec


def test_round_tripped_spec_builds_equivalent_objects():
    spec = ScenarioSpec.from_dict(_tiny_spec_dict())
    rebuilt = ScenarioSpec.from_json(spec.to_json())
    originals = spec.build()
    copies = rebuilt.build()
    assert [g.name for g in originals] == [g.name for g in copies]
    for original, copy in zip(originals, copies):
        assert len(original.cells) == len(copy.cells)
        for a, b in zip(original.cells, copy.cells):
            assert a.du.du_id == b.du.du_id
            assert a.du.mac == b.du.mac
            assert a.profile.name == b.profile.name
            assert a.config.num_prb == b.config.num_prb
            assert sorted(a.rus) == sorted(b.rus)
            for name in a.rus:
                assert a.rus[name][0].mac == b.rus[name][0].mac
        assert [type(m).__name__ for m in original.middleboxes] == [
            type(m).__name__ for m in copy.middleboxes
        ]


def test_cell_seeds_are_deterministic_and_spec_order_stable():
    spec = ScenarioSpec.from_dict(_tiny_spec_dict())
    assert spec.cell_seed(spec.cells[0]) == 5000
    assert spec.cell_seed(spec.cells[1]) == 5001
    pinned = ScenarioSpec.from_dict(
        _tiny_spec_dict(
            cells=[
                dict(_tiny_spec_dict()["cells"][0], seed=99),
                _tiny_spec_dict()["cells"][1],
            ]
        )
    )
    assert pinned.cell_seed(pinned.cells[0]) == 99


def test_unknown_keys_rejected_at_every_level():
    with pytest.raises(KeyError):
        ScenarioSpec.from_dict(_tiny_spec_dict(bogus=1))
    bad_cell = _tiny_spec_dict()
    bad_cell["cells"][0]["bogus"] = 1
    with pytest.raises(KeyError):
        ScenarioSpec.from_dict(bad_cell)
    bad_ru = _tiny_spec_dict()
    bad_ru["cells"][0]["rus"][0]["bogus"] = 1
    with pytest.raises(KeyError):
        ScenarioSpec.from_dict(bad_ru)


def test_validation_rejects_duplicates_and_empty():
    with pytest.raises(ValueError):
        ScenarioSpec(name="x", cells=())
    cell = CellSpec(name="a", pci=1, rus=(RuSpec(name="r1"),))
    with pytest.raises(ValueError):
        ScenarioSpec(name="x", cells=(cell, cell))


def test_coupling_groups_follow_declaration_order():
    data = _tiny_spec_dict()
    data["cells"][0]["group"] = "pair"
    data["cells"][1]["group"] = "pair"
    spec = ScenarioSpec.from_dict(data)
    assert list(spec.groups()) == ["pair"]
    assert [c.name for c in spec.groups()["pair"]] == ["alpha", "beta"]


def test_golden_8cell_fixture_matches_bench_topology():
    """The shipped fixture IS the benchmark scenario, byte for byte."""
    from repro.eval.scale import bench_spec

    with open(FIXTURE, "r", encoding="utf-8") as handle:
        golden = handle.read()
    assert bench_spec(40).to_json() + "\n" == golden
    spec = ScenarioSpec.from_json(golden)
    assert len(spec.cells) == 8
    assert spec.groups()["campus"][0].name == "cell7"
    groups = Scenario(spec).build()
    assert sorted(g.name for g in groups) == sorted(spec.groups())


def test_golden_fixture_json_is_canonical():
    with open(FIXTURE, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    spec = ScenarioSpec.from_dict(data)
    assert spec.to_dict() == data
