"""Mixed-codec deployments: sharding contract and negotiation plumbing."""

import pytest
from hypothesis import given, settings

from repro.conformance import generators as gen
from repro.eval.scale import bench_spec
from repro.fronthaul.compression import MOD_COMP_METH
from repro.ran.mplane import RuCapabilities
from repro.ran.stacks import negotiate_compression, profile_by_name
from repro.scale import Scenario, ScenarioSpec
from repro.scale.build import build_cell
from repro.scale.spec import CellSpec, RuSpec

#: codec painted onto the 8 bench cells: a BFP/modcomp checkerboard
#: plus explicit-default and pinned-bfp cells.
_CODEC_PAINT = [None, "modcomp", "bfp", "modcomp", None, "modcomp",
                "modcomp", None]


def _mixed_spec(slots=3):
    data = bench_spec(slots).to_dict()
    for cell, codec in zip(data["cells"], _CODEC_PAINT):
        cell["codec"] = codec
    data["name"] = "mixed-codec-8cell"
    return ScenarioSpec.from_dict(data)


def test_cell_spec_rejects_unknown_codec():
    with pytest.raises(ValueError, match="codec"):
        CellSpec(
            name="c",
            pci=1,
            bandwidth_hz=20_000_000,
            codec="zstd",
            rus=(RuSpec(name="c-ru1"),),
        )


def test_codec_survives_dict_round_trip():
    spec = _mixed_spec()
    again = ScenarioSpec.from_dict(spec.to_dict())
    assert [cell.codec for cell in again.cells] == _CODEC_PAINT
    assert again == spec


def test_codec_changes_the_group_fingerprints():
    base = bench_spec(3).group_fingerprints()
    mixed = _mixed_spec(3).group_fingerprints()
    changed = {
        cell.name
        for cell, codec in zip(bench_spec(3).cells, _CODEC_PAINT)
        if codec is not None
    }
    # Every group containing a repainted cell must re-fingerprint (even
    # an explicit "bfp" is new build identity); the untouched ones must
    # not — a delta should rebuild only what moved.
    for group, digest in base.items():
        group_cells = {
            cell.name
            for cell in _mixed_spec(3).groups()[group]
        }
        if group_cells & changed:
            assert mixed[group] != digest, group
        else:
            assert mixed[group] == digest, group


def test_built_cell_carries_negotiated_config():
    spec = _mixed_spec()
    for du_id, cell_spec in enumerate(spec.cells, start=1):
        built = build_cell(
            spec, cell_spec, du_id, spec.ru_id_base(cell_spec.name)
        )
        profile = profile_by_name(cell_spec.profile)
        expected = negotiate_compression(
            profile, cell_spec.codec, RuCapabilities()
        )
        assert built.config.compression == expected
        assert built.du.compression == expected
        for ru, _position in built.rus.values():
            assert ru.config.compression == expected
        if cell_spec.codec == "modcomp":
            assert built.config.compression.comp_meth == MOD_COMP_METH


def test_mixed_codec_digest_differs_from_all_bfp():
    mixed = Scenario(_mixed_spec()).run(workers=1)
    all_bfp = Scenario(bench_spec(3)).run(workers=1)
    assert mixed.digest != all_bfp.digest


def test_mixed_codec_sharded_digest_matches_single_process():
    # The acceptance bar: the codec is per-cell state that must survive
    # sharding untouched at every worker count.
    scenario = Scenario(_mixed_spec())
    single = scenario.run(workers=1)
    for workers in (2, 4, 8):
        sharded = scenario.run(workers=workers)
        assert sharded.digest == single.digest, (
            f"mixed-codec digest diverged at workers={workers}"
        )
        assert sharded.timeline() == single.timeline()


@given(spec=gen.scenario_specs())
@settings(max_examples=30, deadline=None)
def test_negotiation_round_trips_through_spec_dicts(spec):
    # Serializing a spec and re-negotiating from the round-tripped copy
    # must land every cell on the identical wire config.
    again = ScenarioSpec.from_dict(spec.to_dict())
    for before, after in zip(spec.cells, again.cells):
        assert after.codec == before.codec
        assert negotiate_compression(
            profile_by_name(after.profile), after.codec
        ) == negotiate_compression(
            profile_by_name(before.profile), before.codec
        )
