"""Streaming telemetry across the sharding boundary.

The ISSUE acceptance criteria for the telemetry plane, end to end:

- the sharded digest oracle is unchanged at 1/2/4/8 workers with
  streaming enabled (telemetry is invisible to simulation results);
- the live-folded final snapshot equals the end-of-run ``collect()``
  snapshot bit for bit at every worker count;
- the stream itself (epochs, spans, deadline accounts, conformance
  counts) and the deterministic exposition are worker-count invariant.
"""

import json
import os

import pytest

from repro.obs import deterministic_exposition
from repro.scale import Scenario, ScenarioSpec

FIXTURE = os.path.join(
    os.path.dirname(__file__), "fixtures", "bench_8cell.json"
)

WORKER_COUNTS = (1, 2, 4, 8)


def _stream_spec(slots=12):
    data = json.load(open(FIXTURE))
    data["name"] = "stream-scale"
    data["slots"] = slots
    data["epoch_slots"] = 4
    data["obs"] = {
        "enabled": True,
        "deadline_accounting": True,
        "conformance": True,
        "stream": True,
    }
    return ScenarioSpec.from_dict(data)


def _reference_spec(slots=12):
    data = json.load(open(FIXTURE))
    data["name"] = "stream-scale"
    data["slots"] = slots
    data["epoch_slots"] = 4
    return ScenarioSpec.from_dict(data)


@pytest.fixture(scope="module")
def streamed_runs():
    return {
        workers: Scenario(_stream_spec()).run(workers=workers)
        for workers in WORKER_COUNTS
    }


@pytest.fixture(scope="module")
def reference_digest():
    return Scenario(_reference_spec()).run(workers=1).digest


def test_streaming_is_invisible_to_the_digest_oracle(
    streamed_runs, reference_digest
):
    for workers, result in streamed_runs.items():
        assert result.digest == reference_digest, (
            f"streaming perturbed results at workers={workers}"
        )


def test_live_fold_equals_collect_bit_for_bit(streamed_runs):
    for workers, result in streamed_runs.items():
        stream = result.telemetry
        assert stream is not None and stream.finalized
        assert stream.live_snapshot() == result.metrics().snapshot(), (
            f"live fold diverged from collect() at workers={workers}"
        )


def test_stream_contents_are_worker_count_invariant(streamed_runs):
    baseline = streamed_runs[1].telemetry
    for workers in WORKER_COUNTS[1:]:
        stream = streamed_runs[workers].telemetry
        assert stream.epochs == baseline.epochs
        assert stream.spans_seen == baseline.spans_seen
        assert stream.spans_dropped == baseline.spans_dropped
        assert stream.frames_checked == baseline.frames_checked
        assert stream.conformance_counts == baseline.conformance_counts
        assert set(stream.accountants) == set(baseline.accountants)
        for name, accountant in baseline.accountants.items():
            twin = stream.accountants[name]
            assert twin.violations == accountant.violations
            assert twin.accounts == accountant.accounts
            assert (
                twin.latency_sketch.sample()
                == accountant.latency_sketch.sample()
            )


def test_deterministic_exposition_is_byte_identical_across_workers(
    streamed_runs,
):
    baseline = deterministic_exposition(streamed_runs[1].telemetry.registry)
    assert baseline  # non-empty: the run produced metrics
    for workers in WORKER_COUNTS[1:]:
        sharded = deterministic_exposition(
            streamed_runs[workers].telemetry.registry
        )
        assert sharded == baseline


def test_cross_shard_spans_cover_every_group(streamed_runs):
    result = streamed_runs[8]
    groups_seen = {
        span.key.group for span in result.telemetry.recorder.spans()
    }
    assert groups_seen == set(result.groups)
    shards_seen = {
        span.key.shard for span in result.telemetry.recorder.spans()
    }
    # Every shard the planner actually used shows up in the stream.
    assert shards_seen == set(range(len(result.plan.shards)))
    assert len(shards_seen) > 1
