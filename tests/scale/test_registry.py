"""Stage registry: every paper app constructible by name from a spec."""

import pytest

from repro.apps.das import DasMiddlebox
from repro.apps.dmimo import DmimoMiddlebox
from repro.apps.prb_monitor import PrbMonitorMiddlebox
from repro.apps.ru_sharing import RuSharingMiddlebox
from repro.scale import ScenarioSpec, register_stage, stage_names
from repro.scale.registry import STAGE_REGISTRY


def _spec(chain, extra_cells=(), **cell_overrides):
    cell = {
        "name": "main",
        "pci": 1,
        "bandwidth_hz": 20_000_000,
        "rus": [{"name": "ru1", "n_antennas": 2}, {"name": "ru2", "n_antennas": 2}],
        "chain": chain,
    }
    cell.update(cell_overrides)
    return ScenarioSpec.from_dict(
        {"name": "t", "slots": 1, "cells": [cell, *extra_cells]}
    )


def test_all_four_paper_apps_register():
    for name in ("das", "dmimo", "ru_sharing", "prb_monitor"):
        assert name in stage_names()


def test_das_builds_by_name_with_cell_defaults():
    groups = _spec([{"stage": "das", "params": {"partial_merge": True}}]).build()
    (box,) = groups[0].middleboxes
    assert isinstance(box, DasMiddlebox)
    assert box.management.get("partial_merge") is True


def test_dmimo_builds_by_name():
    groups = _spec([{"stage": "dmimo"}]).build()
    (box,) = groups[0].middleboxes
    assert isinstance(box, DmimoMiddlebox)


def test_prb_monitor_builds_by_name():
    groups = _spec([{"stage": "prb_monitor", "params": {"thr_dl": 0.5}}]).build()
    (box,) = groups[0].middleboxes
    assert isinstance(box, PrbMonitorMiddlebox)


def test_ru_sharing_builds_by_name_and_rebinds_host_ru():
    guest = {
        "name": "guest",
        "pci": 2,
        "bandwidth_hz": 20_000_000,
        "center_frequency_hz": 3.47e9,
        "group": "pair",
        "rus": [{"name": "guest-ru"}],
        "chain": [],
    }
    spec = _spec(
        [{"stage": "ru_sharing", "params": {"ru": "ru1", "cells": ["main", "guest"]}}],
        extra_cells=[guest],
        center_frequency_hz=3.45e9,
        group="pair",
        rus=[{"name": "ru1", "n_antennas": 2, "num_prb": 160,
              "center_frequency_hz": 3.46e9}],
    )
    (group,) = spec.build()
    box = group.middleboxes[0]
    assert isinstance(box, RuSharingMiddlebox)
    host_ru = group.cells[0].rus["ru1"][0]
    # The shared RU answers to the mux middlebox, not its home DU.
    assert host_ru.du_mac == box.mac


def test_stage_receives_normalized_base_kwargs():
    groups = _spec(
        [{"stage": "prb_monitor", "name": "edge-monitor"}]
    ).build()
    (box,) = groups[0].middleboxes
    assert box.name == "edge-monitor"
    assert box.stack_profile is not None
    assert box.stack_profile.name == "srsRAN"


def test_unknown_stage_name_raises_with_catalog():
    with pytest.raises(KeyError, match="unknown stage"):
        _spec([{"stage": "warp_drive"}]).build()


def test_custom_stage_registration():
    from repro.core.middlebox import Middlebox

    @register_stage("test_noop")
    def _build(stage, ctx):
        return Middlebox(**ctx.base_kwargs(stage, ctx.cell()))

    try:
        groups = _spec([{"stage": "test_noop"}]).build()
        assert type(groups[0].middleboxes[0]) is Middlebox
        with pytest.raises(ValueError, match="already registered"):
            register_stage("test_noop")(_build)
    finally:
        STAGE_REGISTRY.pop("test_noop", None)
