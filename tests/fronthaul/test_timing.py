"""Frame structure, numerology and TDD pattern tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fronthaul.timing import (
    SYMBOLS_PER_SLOT,
    Numerology,
    SlotClock,
    SlotType,
    SymbolTime,
    TddPattern,
)


class TestNumerology:
    def test_mu1_scs(self):
        assert Numerology(mu=1).scs_hz == 30_000

    def test_mu0_scs(self):
        assert Numerology(mu=0).scs_hz == 15_000

    def test_mu1_slot_duration(self):
        # 30 kHz SCS: 0.5 ms slots, ~35.7 us symbols.
        numerology = Numerology(mu=1)
        assert numerology.slot_duration_ns == 500_000
        assert numerology.slots_per_frame == 20
        assert numerology.slots_per_second == 2000

    def test_symbol_duration_order_of_magnitude(self):
        # Section 2.2: "a few tens of microseconds".
        assert 30_000 < Numerology(mu=1).symbol_duration_ns < 40_000

    def test_rejects_bad_mu(self):
        with pytest.raises(ValueError):
            Numerology(mu=5)


class TestSymbolTime:
    def test_ordering(self):
        a = SymbolTime(0, 0, 0, 0)
        b = SymbolTime(0, 0, 0, 1)
        c = SymbolTime(0, 0, 1, 0)
        assert a < b < c

    def test_slot_key_ignores_symbol(self):
        assert SymbolTime(1, 2, 1, 5).slot_key() == SymbolTime(1, 2, 1, 9).slot_key()

    def test_absolute_slot_roundtrip(self):
        numerology = Numerology(mu=1)
        for index in (0, 1, 19, 20, 1234):
            time = SymbolTime.from_absolute_slot(index, numerology, symbol=3)
            assert time.absolute_slot(numerology) == index
            assert time.symbol == 3

    def test_frame_wraps_at_256(self):
        numerology = Numerology(mu=1)
        time = SymbolTime.from_absolute_slot(256 * 20, numerology)
        assert time.frame == 0

    def test_ns_monotonic(self):
        numerology = Numerology(mu=1)
        previous = -1.0
        for index in range(5):
            for symbol in range(SYMBOLS_PER_SLOT):
                time = SymbolTime.from_absolute_slot(index, numerology, symbol)
                assert time.ns(numerology) > previous
                previous = time.ns(numerology)

    def test_validation(self):
        with pytest.raises(ValueError):
            SymbolTime(256, 0, 0, 0)
        with pytest.raises(ValueError):
            SymbolTime(0, 10, 0, 0)
        with pytest.raises(ValueError):
            SymbolTime(0, 0, 0, 14)

    @given(st.integers(min_value=0, max_value=256 * 20 - 1))
    def test_absolute_slot_roundtrip_property(self, index):
        numerology = Numerology(mu=1)
        assert (
            SymbolTime.from_absolute_slot(index, numerology).absolute_slot(
                numerology
            )
            == index
        )


class TestTddPattern:
    def test_dddsu_slot_types(self):
        pattern = TddPattern("DDDSU")
        assert pattern.slot_type(0) is SlotType.DOWNLINK
        assert pattern.slot_type(3) is SlotType.SPECIAL
        assert pattern.slot_type(4) is SlotType.UPLINK
        assert pattern.slot_type(5) is SlotType.DOWNLINK  # wraps

    def test_special_slot_symbol_split(self):
        pattern = TddPattern("DDDSU", 6, 4, 4)
        assert pattern.is_downlink_symbol(3, 0)
        assert pattern.is_downlink_symbol(3, 5)
        assert not pattern.is_downlink_symbol(3, 6)  # guard
        assert not pattern.is_uplink_symbol(3, 9)  # guard
        assert pattern.is_uplink_symbol(3, 10)
        assert pattern.is_uplink_symbol(3, 13)

    def test_fraction_sums(self):
        pattern = TddPattern("DDDSU", 6, 4, 4)
        dl = pattern.downlink_symbol_fraction()
        ul = pattern.uplink_symbol_fraction()
        assert dl + ul < 1.0  # guard symbols are neither
        assert dl == pytest.approx((3 * 14 + 6) / 70)
        assert ul == pytest.approx((14 + 4) / 70)

    def test_dl_heavy_pattern_has_higher_dl_fraction(self):
        light = TddPattern("DDDSU", 6, 4, 4)
        heavy = TddPattern("DDDDDDDSUU", 6, 4, 4)
        assert (
            heavy.downlink_symbol_fraction() > light.downlink_symbol_fraction()
        )

    def test_rejects_malformed_pattern(self):
        with pytest.raises(ValueError):
            TddPattern("DDXSU")
        with pytest.raises(ValueError):
            TddPattern("")

    def test_rejects_bad_special_split(self):
        with pytest.raises(ValueError):
            TddPattern("DDDSU", 6, 4, 5)

    def test_uplink_slot_all_symbols(self):
        pattern = TddPattern("DDDSU")
        assert all(pattern.is_uplink_symbol(4, s) for s in range(14))
        assert not any(pattern.is_downlink_symbol(4, s) for s in range(14))


class TestSlotClock:
    def test_advance_produces_consecutive_stamps(self):
        clock = SlotClock(Numerology(mu=1))
        stamps = [clock.advance() for _ in range(25)]
        numerology = Numerology(mu=1)
        assert [s.absolute_slot(numerology) for s in stamps] == list(range(25))

    def test_symbols_iterates_current_slot(self):
        clock = SlotClock(Numerology(mu=1), start_slot=7)
        symbols = list(clock.symbols())
        assert len(symbols) == SYMBOLS_PER_SLOT
        assert all(s.slot_key() == symbols[0].slot_key() for s in symbols)
        assert [s.symbol for s in symbols] == list(range(14))

    def test_start_slot_offset(self):
        clock = SlotClock(Numerology(mu=1), start_slot=40)
        assert clock.advance().frame == 2
