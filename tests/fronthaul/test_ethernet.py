"""Ethernet/VLAN framing tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fronthaul.ethernet import (
    BROADCAST,
    ETHERTYPE_ECPRI,
    EthernetHeader,
    MacAddress,
    VlanTag,
)


class TestMacAddress:
    def test_from_string_roundtrip(self):
        mac = MacAddress.from_string("6c:ad:ad:00:0b:6c")
        assert str(mac) == "6c:ad:ad:00:0b:6c"

    def test_from_int_roundtrip(self):
        mac = MacAddress.from_int(0x6CADAD000B6C)
        assert mac.to_int() == 0x6CADAD000B6C

    def test_string_and_int_agree(self):
        mac = MacAddress.from_string("02:00:00:00:00:ff")
        assert mac == MacAddress.from_int(0x0200000000FF)

    def test_rejects_short_raw(self):
        with pytest.raises(ValueError):
            MacAddress(b"\x01\x02")

    def test_rejects_malformed_string(self):
        with pytest.raises(ValueError):
            MacAddress.from_string("not-a-mac")

    def test_rejects_out_of_range_int(self):
        with pytest.raises(ValueError):
            MacAddress.from_int(1 << 48)

    def test_broadcast_constant(self):
        assert BROADCAST.raw == b"\xff" * 6

    def test_equality_and_hash(self):
        a = MacAddress.from_int(42)
        b = MacAddress.from_int(42)
        assert a == b
        assert hash(a) == hash(b)

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_int_roundtrip_property(self, value):
        assert MacAddress.from_int(value).to_int() == value


class TestVlanTag:
    def test_tci_roundtrip(self):
        tag = VlanTag(vlan_id=6, priority=3, dei=True)
        assert VlanTag.from_tci(tag.to_tci()) == tag

    def test_rejects_bad_vlan_id(self):
        with pytest.raises(ValueError):
            VlanTag(vlan_id=4096)

    def test_rejects_bad_priority(self):
        with pytest.raises(ValueError):
            VlanTag(vlan_id=1, priority=8)

    @given(
        st.integers(min_value=0, max_value=4095),
        st.integers(min_value=0, max_value=7),
        st.booleans(),
    )
    def test_tci_roundtrip_property(self, vlan_id, priority, dei):
        tag = VlanTag(vlan_id=vlan_id, priority=priority, dei=dei)
        assert VlanTag.from_tci(tag.to_tci()) == tag


class TestEthernetHeader:
    def test_untagged_roundtrip(self):
        header = EthernetHeader(
            dst=MacAddress.from_int(1), src=MacAddress.from_int(2)
        )
        packed = header.pack()
        assert len(packed) == 14
        parsed, consumed = EthernetHeader.unpack(packed)
        assert consumed == 14
        assert parsed.dst == header.dst
        assert parsed.src == header.src
        assert parsed.ethertype == ETHERTYPE_ECPRI
        assert parsed.vlan is None

    def test_vlan_roundtrip(self):
        header = EthernetHeader(
            dst=MacAddress.from_int(1),
            src=MacAddress.from_int(2),
            vlan=VlanTag(vlan_id=6),
        )
        packed = header.pack()
        assert len(packed) == 18
        parsed, consumed = EthernetHeader.unpack(packed)
        assert consumed == 18
        assert parsed.vlan == VlanTag(vlan_id=6)
        assert parsed.ethertype == ETHERTYPE_ECPRI

    def test_size_property_matches_pack(self):
        untagged = EthernetHeader(MacAddress.from_int(1), MacAddress.from_int(2))
        tagged = EthernetHeader(
            MacAddress.from_int(1), MacAddress.from_int(2),
            vlan=VlanTag(vlan_id=9),
        )
        assert untagged.size == len(untagged.pack())
        assert tagged.size == len(tagged.pack())

    def test_truncated_raises(self):
        with pytest.raises(ValueError):
            EthernetHeader.unpack(b"\x00" * 10)

    def test_truncated_vlan_raises(self):
        header = EthernetHeader(
            MacAddress.from_int(1), MacAddress.from_int(2),
            vlan=VlanTag(vlan_id=1),
        )
        with pytest.raises(ValueError):
            EthernetHeader.unpack(header.pack()[:16])

    def test_a1_action_rewrites_addresses(self):
        """The substrate of action A1: rewriting dst steers the frame."""
        header = EthernetHeader(MacAddress.from_int(1), MacAddress.from_int(2))
        header.dst = MacAddress.from_int(99)
        parsed, _ = EthernetHeader.unpack(header.pack())
        assert parsed.dst.to_int() == 99
