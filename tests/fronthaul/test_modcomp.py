"""Modulation compression: round-trip bounds, wire legality, dispatch."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.conformance import generators as gen
from repro.fronthaul.compression import (
    MOD_COMP_METH,
    BfpCompressor,
    CompressionConfig,
    codec_for,
    merge_payloads,
)
from repro.fronthaul.modcomp import ModCompressor, max_scaler


def _config(width=3):
    return CompressionConfig(iq_width=width, comp_meth=MOD_COMP_METH)


class TestConfigAndDispatch:
    def test_codec_for_dispatches_by_meth(self):
        assert isinstance(codec_for(_config()), ModCompressor)
        assert isinstance(
            codec_for(CompressionConfig(iq_width=9)), BfpCompressor
        )

    def test_modcompressor_rejects_bfp_config(self):
        with pytest.raises(ValueError):
            ModCompressor(CompressionConfig(iq_width=9))

    def test_prb_payload_bytes(self):
        # 2-byte udCompParam + 24 w-bit mantissas.
        assert _config(3).prb_payload_bytes() == 2 + 9
        assert _config(4).prb_payload_bytes() == 2 + 12
        assert _config(6).prb_payload_bytes() == 2 + 18

    def test_config_byte_round_trip(self):
        config = _config(6)
        assert CompressionConfig.from_byte(config.to_byte()) == config

    def test_rejects_out_of_range_width(self):
        with pytest.raises(ValueError):
            _config(0)
        with pytest.raises(ValueError):
            _config(15)

    def test_max_scaler(self):
        assert max_scaler(3) == 13
        assert max_scaler(14) == 2
        assert max_scaler(16) == 0


class TestConfigDictRoundTrip:
    def test_to_dict_from_dict_round_trip(self):
        for config in (_config(3), CompressionConfig(iq_width=14)):
            assert CompressionConfig.from_dict(config.to_dict()) == config

    def test_from_dict_defaults(self):
        assert CompressionConfig.from_dict({}) == CompressionConfig()

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(KeyError, match="unknown keys.*csf"):
            CompressionConfig.from_dict({"iq_width": 3, "csf": 1})

    def test_from_dict_rejects_typo_of_known_key(self):
        with pytest.raises(KeyError, match="unknown keys"):
            CompressionConfig.from_dict({"iq_widht": 9})


class TestScalers:
    def test_idle_prb_has_zero_scaler(self):
        codec = ModCompressor(_config(3))
        samples = np.zeros((2, 24), dtype=np.int16)
        assert codec.scalers_for(samples).tolist() == [0, 0]

    def test_scaler_is_minimal_shift(self):
        codec = ModCompressor(_config(3))
        # 7 needs 4 signed bits; one shift brings it into 3.
        samples = np.full((1, 24), 7, dtype=np.int16)
        assert codec.scalers_for(samples).tolist() == [1]
        # 3 fits 3 signed bits directly.
        samples = np.full((1, 24), 3, dtype=np.int16)
        assert codec.scalers_for(samples).tolist() == [0]

    def test_int16_extremes_stay_legal(self):
        for width in (1, 3, 6, 14):
            codec = ModCompressor(_config(width))
            samples = np.array(
                [[-32768, 32767] * 12], dtype=np.int16
            )
            assert int(codec.scalers_for(samples)[0]) <= max_scaler(width)

    def test_compress_array_rejects_oversized_scaler(self):
        codec = ModCompressor(_config(3))
        wide = np.full((1, 24), 1 << 20, dtype=np.int64)
        with pytest.raises(ValueError, match="legal bound"):
            codec.compress_array(wide)


class TestRoundTrip:
    @pytest.mark.parametrize("width", [1, 2, 3, 4, 6, 8, 14])
    def test_error_bounded_by_half_step(self, rng, width):
        codec = ModCompressor(_config(width))
        samples = rng.integers(-32768, 32768, size=(8, 24), dtype=np.int16)
        decoded = codec.decompress(codec.compress(samples), 8)
        scalers = codec.scalers_for(samples).astype(np.int64)
        half_step = np.where(scalers > 0, 1 << np.maximum(scalers - 1, 0), 0)
        error = np.abs(decoded.astype(np.int64) - samples.astype(np.int64))
        assert (error <= half_step[:, None]).all()

    def test_lossless_at_scaler_zero(self, rng):
        codec = ModCompressor(_config(6))
        samples = rng.integers(-32, 32, size=(4, 24), dtype=np.int16)
        decoded = codec.decompress(codec.compress(samples), 4)
        assert (decoded == samples).all()

    def test_recompression_is_stable(self, rng):
        # Lossy once, stable forever: the DAS merge contract.
        codec = ModCompressor(_config(3))
        samples = rng.integers(-32768, 32768, size=(6, 24), dtype=np.int16)
        wire = codec.compress(samples)
        assert codec.compress(codec.decompress(wire, 6)) == wire

    def test_wire_size_matches_config(self, rng):
        for width in (1, 3, 6):
            codec = ModCompressor(_config(width))
            samples = rng.integers(-500, 500, size=(5, 24), dtype=np.int16)
            wire = codec.compress(samples)
            assert len(wire) == 5 * (2 + 3 * width)

    def test_decompress_stack_matches_loop(self, rng):
        codec = ModCompressor(_config(4))
        payloads = [
            codec.compress(
                rng.integers(-9000, 9000, size=(3, 24), dtype=np.int16)
            )
            for _ in range(4)
        ]
        stacked = codec.decompress_stack(payloads, 3)
        for index, payload in enumerate(payloads):
            assert (stacked[index] == codec.decompress(payload, 3)).all()

    def test_truncated_payload_raises(self):
        codec = ModCompressor(_config(3))
        with pytest.raises(ValueError):
            codec.decompress(b"\x00" * 10, 2)
        with pytest.raises(ValueError):
            codec.read_params(b"\x00" * 10, 2)

    def test_decompress_stack_empty(self):
        codec = ModCompressor(_config(3))
        assert codec.decompress_stack([], 4).shape == (0, 4, 24)

    def test_decompress_stack_rejects_truncated_operand(self):
        codec = ModCompressor(_config(3))
        with pytest.raises(ValueError, match="truncated"):
            codec.decompress_stack([b"\x00"], 2)

    def test_rejects_bad_sample_shape(self):
        codec = ModCompressor(_config(3))
        with pytest.raises(ValueError, match="expected shape"):
            codec.compress(np.zeros((2, 23), dtype=np.int16))


class TestWireParams:
    def test_csf_set_exactly_when_scaled(self, rng):
        codec = ModCompressor(_config(3))
        quiet = rng.integers(-3, 4, size=(2, 24), dtype=np.int16)
        loud = rng.integers(-30000, 30000, size=(2, 24), dtype=np.int16)
        loud[loud.max(axis=1) < 1000] = 20000
        wire = codec.compress(np.vstack([quiet, loud]))
        csf, scalers = codec.read_params(wire, 4)
        assert (csf.astype(bool) == (scalers > 0)).all()
        assert csf[:2].tolist() == [0, 0]
        assert csf[2:].tolist() == [1, 1]

    def test_read_exponents_returns_scalers(self, rng):
        codec = ModCompressor(_config(3))
        samples = rng.integers(-32768, 32768, size=(5, 24), dtype=np.int16)
        wire = codec.compress(samples)
        assert (
            codec.read_exponents(wire, 5)
            == codec.scalers_for(samples)
        ).all()

    def test_decompress_clamps_illegal_wire_scaler(self):
        # An illegal scaler on the wire is the validator's finding; the
        # decoder must still produce in-range int16 without overflow.
        codec = ModCompressor(_config(3))
        payload = bytearray(codec.compress(np.full((1, 24), 5, np.int16)))
        payload[0] = 0xFF
        payload[1] = 0xFF  # csf + scaler 0x7FFF
        decoded = codec.decompress(bytes(payload), 1)
        assert decoded.dtype == np.int16


class TestMerge:
    def test_merge_payloads_dispatches_modcomp(self, rng):
        config = _config(6)
        codec = ModCompressor(config)
        operands = [
            codec.compress(
                rng.integers(-400, 400, size=(3, 24), dtype=np.int16)
            )
            for _ in range(3)
        ]
        merged = codec.decompress(merge_payloads(operands, 3, config), 3)
        total = sum(
            codec.decompress(op, 3).astype(np.int64) for op in operands
        )
        half_step = 1 << max_scaler(6)
        assert np.abs(
            merged.astype(np.int64) - np.clip(total, -32768, 32767)
        ).max() <= half_step


class TestHypothesisProperties:
    @given(samples=gen.iq_samples(), config=gen.modcomp_configs())
    @settings(max_examples=80, deadline=None)
    def test_evm_bound_within_quantization_step(self, samples, config):
        # The acceptance bound: reconstruction error never exceeds half
        # the constellation quantization step 2**scaler.
        codec = ModCompressor(config)
        decoded = codec.decompress(codec.compress(samples), len(samples))
        scalers = codec.scalers_for(samples).astype(np.int64)
        half_step = np.where(scalers > 0, 1 << np.maximum(scalers - 1, 0), 0)
        error = np.abs(decoded.astype(np.int64) - samples.astype(np.int64))
        assert (error <= half_step[:, None]).all()

    @given(samples=gen.iq_samples(), config=gen.modcomp_configs())
    @settings(max_examples=80, deadline=None)
    def test_round_trip_is_stable(self, samples, config):
        codec = ModCompressor(config)
        wire = codec.compress(samples)
        assert codec.compress(codec.decompress(wire, len(samples))) == wire

    @given(samples=gen.iq_samples(), config=gen.compression_configs())
    @settings(max_examples=60, deadline=None)
    def test_codec_for_round_trips_every_codec(self, samples, config):
        codec = codec_for(config)
        wire = codec.compress(samples)
        assert len(wire) == len(samples) * config.prb_payload_bytes()
        decoded = codec.decompress(wire, len(samples))
        assert codec.compress(decoded) == wire
