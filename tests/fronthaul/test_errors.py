"""Typed malformed-frame errors and the truncation silent-accept fix.

Regression suite for the bug where a U-plane frame truncated exactly at a
section boundary parsed "successfully" as a shorter message and delivered
garbage IQ: :func:`parse_packet` is now strict about the eCPRI
``payloadSize`` accounting for every byte on the wire, so *every* cut of
a frame raises a typed :class:`MalformedFrame` subclass.
"""

import dataclasses

import numpy as np
import pytest

from repro.faults import FaultConfig, FaultInjector
from repro.fronthaul.cplane import CPlaneMessage
from repro.fronthaul.errors import (
    EcpriLengthError,
    MalformedFrame,
    TrailingBytes,
    TruncatedFrame,
)
from repro.fronthaul.packet import parse_packet
from repro.fronthaul.uplane import UPlaneMessage, UPlaneSection
from tests.conformance.builders import (
    SRS_COMPRESSION,
    cplane_packet,
    uplane_packet,
)

#: Ethernet (14) + eCPRI common header (4) + eAxC/seq words (4): the
#: first byte where the strict payloadSize check, not a header parser,
#: owns the failure.
_HEADERS_END = 22


class TestHierarchy:
    def test_every_error_is_a_malformed_frame(self):
        for error in (TruncatedFrame, EcpriLengthError, TrailingBytes):
            assert issubclass(error, MalformedFrame)

    def test_malformed_frame_is_a_value_error(self):
        # Existing containment points (switch delivery guard, slot loop,
        # DU/RU ingress) catch ValueError; the typed hierarchy must never
        # escape them.
        assert issubclass(MalformedFrame, ValueError)
        with pytest.raises(ValueError):
            raise TruncatedFrame("contained")


class TestStrictParse:
    def test_every_cut_of_a_uplane_frame_raises(self):
        wire = uplane_packet(0, 8).pack()
        for cut in range(1, len(wire)):
            with pytest.raises(MalformedFrame):
                parse_packet(wire[:cut], carrier_num_prb=106)

    def test_cut_class_matches_where_the_knife_landed(self):
        wire = uplane_packet(0, 8).pack()
        for cut in range(1, len(wire)):
            with pytest.raises(
                TruncatedFrame if cut < _HEADERS_END else EcpriLengthError
            ):
                parse_packet(wire[:cut], carrier_num_prb=106)

    def test_section_boundary_cut_no_longer_silently_accepted(self):
        # The original bug: cutting a two-section frame exactly at the
        # first section's end leaves a byte-for-byte valid one-section
        # body, distinguishable only through payloadSize.
        def section(section_id, start_prb):
            return UPlaneSection.from_samples(
                section_id=section_id,
                start_prb=start_prb,
                samples=np.full((4, 24), 9, dtype=np.int16),
                compression=SRS_COMPRESSION,
            )

        both = uplane_packet(0, 4)
        both.message.sections.append(section(2, 10))
        one_section_len = len(uplane_packet(0, 4).pack())
        cut = both.pack()[:one_section_len]
        with pytest.raises(EcpriLengthError):
            parse_packet(cut, carrier_num_prb=106)

    def test_inflated_size_field_raises(self):
        wire = bytearray(cplane_packet(0, 10).pack())
        wire[16:18] = (int.from_bytes(wire[16:18], "big") + 8).to_bytes(
            2, "big"
        )
        with pytest.raises(EcpriLengthError):
            parse_packet(bytes(wire), carrier_num_prb=106)

    def test_trailing_garbage_raises(self):
        wire = uplane_packet(0, 4).pack() + b"\x00\x00\x00"
        with pytest.raises(EcpriLengthError):
            parse_packet(wire, carrier_num_prb=106)

    def test_wrong_ethertype_raises(self):
        packet = cplane_packet(0, 10)
        packet = dataclasses.replace(
            packet, eth=dataclasses.replace(packet.eth, ethertype=0x0800)
        )
        with pytest.raises(MalformedFrame):
            parse_packet(packet.pack(), carrier_num_prb=106)

    def test_cplane_trailing_bytes_typed(self):
        body = cplane_packet(0, 10).message.pack() + b"\xff"
        with pytest.raises(TrailingBytes):
            CPlaneMessage.unpack(body)

    def test_uplane_truncated_payload_typed(self):
        body = uplane_packet(0, 4).message.pack()
        with pytest.raises(TruncatedFrame):
            UPlaneMessage.unpack(body[:-3], carrier_num_prb=106)


class TestInjectorTruncationAbsorbed:
    """With the strict parser, a truncated U-plane frame can never reach
    a host: every cut dies at the injection point like a failed CRC."""

    def test_truncation_never_delivers(self):
        injector = FaultInjector(
            FaultConfig(truncate_rate=1.0), seed=4, carrier_num_prb=106
        )
        n = 60
        packets = [uplane_packet(0, 4, seq=i % 256) for i in range(n)]
        survivors = injector.apply(packets)
        assert survivors == []
        assert injector.stats.truncated_delivered == 0
        assert injector.stats.truncate_dropped == n

    def test_cplane_truncation_never_delivers(self):
        injector = FaultInjector(
            FaultConfig(truncate_rate=1.0), seed=7, carrier_num_prb=106
        )
        survivors = injector.apply(
            [cplane_packet(0, 10, seq=i) for i in range(40)]
        )
        assert survivors == []
        assert injector.stats.truncate_dropped == 40
