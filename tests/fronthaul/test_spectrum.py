"""PRB grid and Appendix A.1.1 alignment math tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fronthaul.spectrum import (
    PrbGrid,
    aligned_du_center_frequency,
    prbs_for_bandwidth,
    split_ru_spectrum,
)


class TestPrbsForBandwidth:
    def test_standard_table(self):
        assert prbs_for_bandwidth(100_000_000) == 273
        assert prbs_for_bandwidth(40_000_000) == 106
        assert prbs_for_bandwidth(25_000_000) == 65

    def test_fallback_for_unusual_bandwidth(self):
        prbs = prbs_for_bandwidth(10_000_000)
        assert 0 < prbs < 30


class TestPrbGrid:
    def test_occupied_bandwidth(self):
        grid = PrbGrid(3.46e9, 273)
        assert grid.occupied_bandwidth_hz == 273 * 12 * 30_000

    def test_prb0_frequency_centred(self):
        grid = PrbGrid(3.46e9, 273)
        low = grid.prb0_frequency_hz
        high = grid.prb_start_frequency_hz(273)
        assert (low + high) / 2 == pytest.approx(3.46e9)

    def test_contains(self):
        outer = PrbGrid(3.46e9, 273)
        inner = PrbGrid(3.43e9, 106)
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_offset_of_aligned(self):
        ru = PrbGrid(3.46e9, 273)
        du_center = aligned_du_center_frequency(ru, 106, prb_offset=10)
        du = PrbGrid(du_center, 106)
        assert ru.is_aligned_with(du)
        assert ru.aligned_prb_offset(du) == 10

    def test_misaligned_grid_detected(self):
        """The Figure 6 right-hand case: a half-PRB shift."""
        ru = PrbGrid(3.46e9, 273)
        du_center = aligned_du_center_frequency(ru, 106, 10) + 180_000  # 0.5 PRB
        du = PrbGrid(du_center, 106)
        assert not ru.is_aligned_with(du)
        with pytest.raises(ValueError):
            ru.aligned_prb_offset(du)

    def test_different_scs_rejected(self):
        a = PrbGrid(3.46e9, 273, scs_hz=30_000)
        b = PrbGrid(3.46e9, 100, scs_hz=15_000)
        with pytest.raises(ValueError):
            a.offset_of(b)

    def test_rejects_nonpositive_prbs(self):
        with pytest.raises(ValueError):
            PrbGrid(3.46e9, 0)


class TestAlignedDuCenterFrequency:
    def test_paper_example(self):
        """Sharing a 100 MHz RU at 3.46 GHz between two 40 MHz DUs gives
        centers near 3.43 GHz and ~3.47 GHz (Section 6.2.3)."""
        ru = PrbGrid(3.46e9, 273)
        low, high = split_ru_spectrum(ru, [106, 106])
        assert low.center_frequency_hz == pytest.approx(3.42994e9, rel=1e-6)
        assert high.center_frequency_hz == pytest.approx(3.4681e9, rel=1e-6)

    def test_rejects_overflow(self):
        ru = PrbGrid(3.46e9, 273)
        with pytest.raises(ValueError):
            aligned_du_center_frequency(ru, 106, prb_offset=200)

    def test_formula_matches_eq_1_to_4(self):
        """Independent recomputation of equations (1)-(4)."""
        ru = PrbGrid(3.46e9, 273)
        scs = 30_000
        prb_offset = 17
        num_prb = 51
        prb0 = ru.center_frequency_hz - 12 * scs * ru.num_prb / 2  # eq. 1-2
        expected = prb0 + 12 * scs * (prb_offset + num_prb / 2)  # eq. 3-4
        assert aligned_du_center_frequency(ru, num_prb, prb_offset) == pytest.approx(
            expected
        )

    @given(
        prb_offset=st.integers(min_value=0, max_value=167),
        num_prb=st.integers(min_value=1, max_value=106),
    )
    def test_alignment_property(self, prb_offset, num_prb):
        """Any offset produced by the formula yields an aligned grid."""
        ru = PrbGrid(3.46e9, 273)
        if prb_offset + num_prb > ru.num_prb:
            return
        center = aligned_du_center_frequency(ru, num_prb, prb_offset)
        du = PrbGrid(center, num_prb)
        assert ru.is_aligned_with(du)
        assert ru.aligned_prb_offset(du) == prb_offset


class TestSplitRuSpectrum:
    def test_non_overlapping_and_packed(self):
        ru = PrbGrid(3.46e9, 273)
        grids = split_ru_spectrum(ru, [106, 106, 51])
        offsets = [ru.aligned_prb_offset(g) for g in grids]
        assert offsets == [0, 106, 212]

    def test_rejects_oversubscription(self):
        ru = PrbGrid(3.46e9, 273)
        with pytest.raises(ValueError):
            split_ru_spectrum(ru, [200, 106])
