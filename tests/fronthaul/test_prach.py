"""PRACH frequency-offset translation tests (Appendix A.1.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fronthaul.prach import (
    PrachOccasion,
    freq_offset_to_hz,
    hz_to_freq_offset,
    translate_freq_offset,
    translate_freq_offset_via_re0,
)
from repro.fronthaul.spectrum import PrbGrid, split_ru_spectrum


class TestUnitConversion:
    def test_half_subcarrier_units(self):
        # Equation (5): units of 0.5 * SCS.
        assert freq_offset_to_hz(2, 30_000) == 30_000
        assert freq_offset_to_hz(-4, 30_000) == -60_000

    def test_hz_roundtrip(self):
        assert hz_to_freq_offset(freq_offset_to_hz(123, 30_000), 30_000) == 123

    def test_rejects_non_multiple(self):
        with pytest.raises(ValueError):
            hz_to_freq_offset(10_000, 30_000)


class TestTranslation:
    def test_identity_when_centers_match(self):
        assert translate_freq_offset(100, 3.46e9, 3.46e9, 30_000) == 100

    def test_shift_direction(self):
        # RU center above DU center -> offset grows (PRACH sits further
        # below the RU's center).
        result = translate_freq_offset(0, 3.43e9, 3.46e9, 30_000)
        assert result == int(0.03e9 / 15_000)

    def test_two_derivations_agree_paper_example(self):
        ru = PrbGrid(3.46e9, 273)
        for du_grid in split_ru_spectrum(ru, [106, 106]):
            for du_offset in (-600, 0, 333, 1272):
                direct = translate_freq_offset(
                    du_offset, du_grid.center_frequency_hz,
                    ru.center_frequency_hz, 30_000,
                )
                via_re0 = translate_freq_offset_via_re0(
                    du_offset, du_grid.center_frequency_hz,
                    ru.center_frequency_hz, 30_000,
                )
                assert direct == via_re0

    def test_rejects_unrepresentable_shift(self):
        with pytest.raises(ValueError):
            translate_freq_offset(0, 3.46e9, 3.46e9 + 7_000, 30_000)

    @given(
        du_offset=st.integers(min_value=-4000, max_value=4000),
        prb_shift=st.integers(min_value=-150, max_value=150),
    )
    def test_equations_agree_property(self, du_offset, prb_shift):
        """Eq. (11) and the eq. (5)-(10) derivation always agree."""
        scs = 30_000
        du_center = 3.45e9
        ru_center = du_center + prb_shift * 12 * scs
        assert translate_freq_offset(
            du_offset, du_center, ru_center, scs
        ) == translate_freq_offset_via_re0(du_offset, du_center, ru_center, scs)

    @given(prb_shift=st.integers(min_value=-100, max_value=100))
    def test_translation_preserves_absolute_frequency(self, prb_shift):
        """The PRACH region's absolute frequency is invariant under
        translation — the whole point of the rewrite."""
        scs = 30_000
        du_grid = PrbGrid(3.45e9, 106, scs)
        ru_grid = PrbGrid(3.45e9 + prb_shift * 12 * scs, 273, scs)
        occasion = PrachOccasion(freq_offset=144, num_prb=12)
        translated = occasion.translate_to(du_grid, ru_grid)
        assert occasion.region_low_edge_hz(du_grid) == pytest.approx(
            translated.region_low_edge_hz(ru_grid)
        )


class TestPrachOccasion:
    def test_translate_preserves_width_and_port(self):
        du_grid = PrbGrid(3.43e9, 106)
        ru_grid = PrbGrid(3.46e9, 273)
        occasion = PrachOccasion(freq_offset=100, num_prb=12, eaxc_ru_port=2)
        translated = occasion.translate_to(du_grid, ru_grid)
        assert translated.num_prb == 12
        assert translated.eaxc_ru_port == 2
        assert translated.freq_offset != occasion.freq_offset
