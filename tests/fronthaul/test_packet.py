"""Full fronthaul frame tests: Ethernet + eCPRI + message."""

import pytest

from repro.fronthaul.cplane import CPlaneMessage, CPlaneSection, Direction
from repro.fronthaul.ecpri import EAxCId, EcpriMessageType
from repro.fronthaul.ethernet import MacAddress, VlanTag
from repro.fronthaul.packet import FronthaulPacket, make_packet, parse_packet
from repro.fronthaul.timing import SymbolTime
from repro.fronthaul.uplane import UPlaneMessage, UPlaneSection

from tests.conftest import random_prb_samples


@pytest.fixture
def uplane_packet(rng, du_mac, ru_mac):
    section = UPlaneSection.from_samples(
        section_id=0, start_prb=0, samples=random_prb_samples(rng, 16)
    )
    message = UPlaneMessage(
        direction=Direction.DOWNLINK,
        time=SymbolTime(1, 2, 1, 3),
        sections=[section],
    )
    return make_packet(du_mac, ru_mac, message,
                       eaxc=EAxCId(du_port=1, ru_port=2), seq_id=9)


@pytest.fixture
def cplane_packet(du_mac, ru_mac):
    message = CPlaneMessage(
        direction=Direction.UPLINK,
        time=SymbolTime(1, 2, 1, 10),
        sections=[CPlaneSection(section_id=0, start_prb=0, num_prb=106)],
    )
    return make_packet(du_mac, ru_mac, message)


class TestFronthaulPacket:
    def test_uplane_wire_roundtrip(self, uplane_packet):
        parsed = parse_packet(uplane_packet.pack())
        assert parsed.is_uplane
        assert not parsed.is_cplane
        assert parsed.eth.src == uplane_packet.eth.src
        assert parsed.eth.dst == uplane_packet.eth.dst
        assert parsed.ecpri.seq_id == 9
        assert parsed.eaxc == EAxCId(du_port=1, ru_port=2)
        assert parsed.time == SymbolTime(1, 2, 1, 3)
        assert (
            parsed.message.sections[0].payload
            == uplane_packet.message.sections[0].payload
        )

    def test_cplane_wire_roundtrip(self, cplane_packet):
        parsed = parse_packet(cplane_packet.pack())
        assert parsed.is_cplane
        assert parsed.ecpri.message_type is EcpriMessageType.RT_CONTROL
        assert parsed.direction is Direction.UPLINK

    def test_vlan_tagged_roundtrip(self, rng, du_mac, ru_mac):
        section = UPlaneSection.from_samples(0, 0, random_prb_samples(rng, 2))
        message = UPlaneMessage(
            direction=Direction.DOWNLINK,
            time=SymbolTime(0, 0, 0, 0),
            sections=[section],
        )
        packet = make_packet(du_mac, ru_mac, message, vlan=VlanTag(vlan_id=6))
        parsed = parse_packet(packet.pack())
        assert parsed.eth.vlan == VlanTag(vlan_id=6)

    def test_payload_size_counts_eaxc_and_seq(self, uplane_packet):
        data = uplane_packet.pack()
        parsed = parse_packet(data)
        body = len(uplane_packet.message.pack())
        assert parsed.ecpri.payload_size == body + 4

    def test_flow_key_groups_by_time_direction_port(self, uplane_packet):
        clone = uplane_packet.clone()
        assert clone.flow_key() == uplane_packet.flow_key()
        clone.ecpri.eaxc = clone.ecpri.eaxc.with_ru_port(7)
        assert clone.flow_key() != uplane_packet.flow_key()

    def test_clone_is_deep(self, uplane_packet):
        clone = uplane_packet.clone()
        clone.eth.dst = MacAddress.from_int(0xDEAD)
        clone.message.sections[0].start_prb = 99
        assert uplane_packet.eth.dst != clone.eth.dst
        assert uplane_packet.message.sections[0].start_prb == 0

    def test_wire_size_matches_pack(self, uplane_packet, cplane_packet):
        assert uplane_packet.wire_size == len(uplane_packet.pack())
        assert cplane_packet.wire_size == len(cplane_packet.pack())

    def test_100mhz_uplane_is_jumbo(self, rng, du_mac, ru_mac):
        """Section 5: 100 MHz cells generate frames > 7 KB."""
        section = UPlaneSection.from_samples(
            0, 0, random_prb_samples(rng, 273)
        )
        message = UPlaneMessage(
            direction=Direction.DOWNLINK,
            time=SymbolTime(0, 0, 0, 0),
            sections=[section],
        )
        packet = make_packet(du_mac, ru_mac, message)
        assert packet.wire_size > 7_000

    def test_non_ecpri_frame_rejected(self, uplane_packet):
        data = bytearray(uplane_packet.pack())
        data[12:14] = (0x0800).to_bytes(2, "big")  # IPv4 ethertype
        with pytest.raises(ValueError):
            parse_packet(bytes(data))

    def test_byte_exact_reserialization(self, uplane_packet, cplane_packet):
        """pack -> parse -> pack is byte-identical (middlebox transparency)."""
        for packet in (uplane_packet, cplane_packet):
            first = packet.pack()
            assert parse_packet(first).pack() == first
