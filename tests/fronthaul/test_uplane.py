"""U-plane message codec tests."""

import numpy as np
import pytest

from repro.fronthaul.compression import CompressionConfig
from repro.fronthaul.cplane import Direction
from repro.fronthaul.timing import SymbolTime
from repro.fronthaul.uplane import UPlaneMessage, UPlaneSection

from tests.conftest import random_prb_samples


@pytest.fixture
def section(rng):
    return UPlaneSection.from_samples(
        section_id=3, start_prb=10, samples=random_prb_samples(rng, 8)
    )


class TestUPlaneSection:
    def test_from_samples_sets_sizes(self, section):
        assert section.num_prb == 8
        assert section.prb_range == (10, 18)
        assert len(section.payload) == 8 * 28  # BFP-9

    def test_iq_roundtrip_within_quantization(self, rng):
        samples = random_prb_samples(rng, 5)
        section = UPlaneSection.from_samples(0, 0, samples)
        restored = section.iq_samples()
        assert restored.shape == (5, 24)
        assert np.abs(restored.astype(int) - samples.astype(int)).max() <= 32

    def test_exponents_fast_path_matches_decompress(self, rng):
        samples = random_prb_samples(rng, 6)
        section = UPlaneSection.from_samples(0, 0, samples)
        from repro.fronthaul.compression import BfpCompressor

        expected = BfpCompressor(section.compression).exponents_for(
            section.iq_samples()
        )
        assert (section.exponents() == expected).all()

    def test_prb_payload_slicing(self, section):
        whole = b"".join(
            section.prb_payload(prb) for prb in range(10, 18)
        )
        assert whole == section.payload

    def test_prb_payload_out_of_range(self, section):
        with pytest.raises(ValueError):
            section.prb_payload(9)
        with pytest.raises(ValueError):
            section.prb_payload(18)

    def test_payload_size_validation(self):
        with pytest.raises(ValueError):
            UPlaneSection(section_id=0, start_prb=0, num_prb=2,
                          payload=b"\x00" * 10)

    def test_replace_payload_recompresses(self, rng, section):
        doubled = np.clip(
            section.iq_samples().astype(int) * 2, -32768, 32767
        ).astype(np.int16)
        updated = section.replace_payload(doubled)
        assert updated.prb_range == section.prb_range
        assert (updated.exponents() >= section.exponents()).all()


class TestUPlaneMessage:
    def make(self, rng, n_prbs=12, direction=Direction.DOWNLINK):
        section = UPlaneSection.from_samples(
            section_id=0, start_prb=0, samples=random_prb_samples(rng, n_prbs)
        )
        return UPlaneMessage(
            direction=direction,
            time=SymbolTime(46, 9, 1, 13),
            sections=[section],
        )

    def test_roundtrip(self, rng):
        message = self.make(rng)
        parsed = UPlaneMessage.unpack(message.pack())
        assert parsed.direction is Direction.DOWNLINK
        assert parsed.time == SymbolTime(46, 9, 1, 13)
        assert parsed.sections[0].payload == message.sections[0].payload

    def test_uplink_roundtrip(self, rng):
        parsed = UPlaneMessage.unpack(
            self.make(rng, direction=Direction.UPLINK).pack()
        )
        assert parsed.direction is Direction.UPLINK

    def test_multi_section_roundtrip(self, rng):
        sections = [
            UPlaneSection.from_samples(
                section_id=i, start_prb=i * 30,
                samples=random_prb_samples(rng, 10),
            )
            for i in range(3)
        ]
        message = UPlaneMessage(
            direction=Direction.UPLINK,
            time=SymbolTime(0, 0, 0, 0),
            sections=sections,
        )
        parsed = UPlaneMessage.unpack(message.pack())
        assert len(parsed.sections) == 3
        assert parsed.total_prbs() == 30
        for original, decoded in zip(sections, parsed.sections):
            assert decoded.payload == original.payload
            assert decoded.prb_range == original.prb_range

    def test_full_band_273_prbs(self, rng):
        """The ALL_PRBS encoding with carrier context (100 MHz cells)."""
        section = UPlaneSection.from_samples(
            section_id=0, start_prb=0, samples=random_prb_samples(rng, 273)
        )
        message = UPlaneMessage(
            direction=Direction.DOWNLINK,
            time=SymbolTime(0, 0, 0, 0),
            sections=[section],
        )
        parsed = UPlaneMessage.unpack(message.pack(), carrier_num_prb=273)
        assert parsed.sections[0].num_prb == 273
        assert parsed.sections[0].payload == section.payload

    def test_uncompressed_section_roundtrip(self, rng):
        config = CompressionConfig(iq_width=16, comp_meth=0)
        section = UPlaneSection.from_samples(
            section_id=1, start_prb=0,
            samples=random_prb_samples(rng, 4), compression=config,
        )
        message = UPlaneMessage(
            direction=Direction.DOWNLINK,
            time=SymbolTime(0, 0, 0, 0),
            sections=[section],
        )
        parsed = UPlaneMessage.unpack(message.pack())
        assert parsed.sections[0].compression.comp_meth == 0
        assert (
            parsed.sections[0].iq_samples() == section.iq_samples()
        ).all()

    def test_filter_index_roundtrip(self, rng):
        message = self.make(rng)
        message.filter_index = 1  # PRACH
        parsed = UPlaneMessage.unpack(message.pack())
        assert parsed.filter_index == 1

    def test_truncated_payload_raises(self, rng):
        data = self.make(rng).pack()
        with pytest.raises(ValueError):
            UPlaneMessage.unpack(data[:-5])
