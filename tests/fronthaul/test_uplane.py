"""U-plane message codec tests."""

import numpy as np
import pytest

from repro.fronthaul.compression import CompressionConfig
from repro.fronthaul.cplane import Direction
from repro.fronthaul.timing import SymbolTime
from repro.fronthaul.uplane import UPlaneMessage, UPlaneSection

from tests.conftest import random_prb_samples


@pytest.fixture
def section(rng):
    return UPlaneSection.from_samples(
        section_id=3, start_prb=10, samples=random_prb_samples(rng, 8)
    )


class TestUPlaneSection:
    def test_from_samples_sets_sizes(self, section):
        assert section.num_prb == 8
        assert section.prb_range == (10, 18)
        assert len(section.payload) == 8 * 28  # BFP-9

    def test_iq_roundtrip_within_quantization(self, rng):
        samples = random_prb_samples(rng, 5)
        section = UPlaneSection.from_samples(0, 0, samples)
        restored = section.iq_samples()
        assert restored.shape == (5, 24)
        assert np.abs(restored.astype(int) - samples.astype(int)).max() <= 32

    def test_exponents_fast_path_matches_decompress(self, rng):
        samples = random_prb_samples(rng, 6)
        section = UPlaneSection.from_samples(0, 0, samples)
        from repro.fronthaul.compression import BfpCompressor

        expected = BfpCompressor(section.compression).exponents_for(
            section.iq_samples()
        )
        assert (section.exponents() == expected).all()

    def test_prb_payload_slicing(self, section):
        whole = b"".join(
            section.prb_payload(prb) for prb in range(10, 18)
        )
        assert whole == section.payload

    def test_prb_payload_out_of_range(self, section):
        with pytest.raises(ValueError):
            section.prb_payload(9)
        with pytest.raises(ValueError):
            section.prb_payload(18)

    def test_payload_size_validation(self):
        with pytest.raises(ValueError):
            UPlaneSection(section_id=0, start_prb=0, num_prb=2,
                          payload=b"\x00" * 10)

    def test_replace_payload_recompresses(self, rng, section):
        doubled = np.clip(
            section.iq_samples().astype(int) * 2, -32768, 32767
        ).astype(np.int16)
        updated = section.replace_payload(doubled)
        assert updated.prb_range == section.prb_range
        assert (updated.exponents() >= section.exponents()).all()


class TestZeroCopyPaths:
    """The vectorization PR's zero-copy contracts: lazy cached decodes,
    payload reuse on untouched samples, and view-backed parsed sections."""

    def test_iq_samples_cached_and_read_only(self, rng):
        section = UPlaneSection.from_samples(
            0, 0, random_prb_samples(rng, 6)
        )
        first = section.iq_samples()
        assert first is section.iq_samples()  # lazy decode runs once
        assert not first.flags.writeable
        with pytest.raises(ValueError):
            first[0, 0] = 1

    def test_replace_payload_fast_path_untouched_samples(self, rng):
        """Samples straight from iq_samples(), never modified -> the new
        section reuses the original wire bytes (zero codec work)."""
        section = UPlaneSection.from_samples(
            section_id=1, start_prb=40, samples=random_prb_samples(rng, 9)
        )
        untouched = section.iq_samples()
        updated = section.replace_payload(untouched)
        assert updated.payload is section.payload
        assert updated.prb_range == section.prb_range

    def test_replace_payload_slow_path_on_copy(self, rng):
        """A .copy() of the decode (even unmodified) is recompressed —
        identity, not equality, gates the fast path."""
        section = UPlaneSection.from_samples(0, 0, random_prb_samples(rng, 5))
        copied = section.iq_samples().copy()
        updated = section.replace_payload(copied)
        assert updated.payload is not section.payload
        assert updated.payload_bytes() == section.payload_bytes()

    def test_replace_payload_pack_roundtrip_misaligned_range(self, rng):
        """The RU-sharing misaligned path: modified samples on a section
        with an odd PRB range must survive pack()/unpack() byte-exactly."""
        samples = random_prb_samples(rng, 7)
        section = UPlaneSection.from_samples(
            section_id=5, start_prb=131, samples=samples
        )
        shifted = section.iq_samples().copy()
        shifted[2:5] = shifted[0:3]  # sample-level PRB move
        updated = section.replace_payload(shifted)
        packed = updated.pack()
        parsed, _ = UPlaneSection.unpack(packed, 0)
        assert parsed.start_prb == 131
        assert parsed.num_prb == 7
        assert parsed.payload_bytes() == updated.payload_bytes()
        assert (parsed.iq_samples() == updated.iq_samples()).all()

    def test_unpacked_section_is_view_backed(self, rng):
        """Message parsing holds memoryview slices into the frame buffer
        (zero-copy), and pack() reproduces the identical bytes."""
        section = UPlaneSection.from_samples(
            section_id=2, start_prb=10, samples=random_prb_samples(rng, 8)
        )
        message = UPlaneMessage(
            direction=Direction.UPLINK,
            time=SymbolTime(1, 2, 3, 4),
            sections=[section],
        )
        wire = message.pack()
        parsed = UPlaneMessage.unpack(wire)
        assert isinstance(parsed.sections[0].payload, memoryview)
        assert parsed.pack() == wire

    def test_subsection_shares_wire_bytes(self, rng):
        section = UPlaneSection.from_samples(
            section_id=0, start_prb=20, samples=random_prb_samples(rng, 10)
        )
        sub = section.subsection(start_prb=23, num_prb=4)
        assert sub.num_prb == 4
        assert sub.payload_bytes() == b"".join(
            section.prb_payload(prb) for prb in range(23, 27)
        )
        assert (sub.iq_samples() == section.iq_samples()[3:7]).all()

    def test_prb_payload_view_bounds_checked(self, rng):
        section = UPlaneSection.from_samples(0, 10, random_prb_samples(rng, 5))
        with pytest.raises(ValueError):
            section.prb_payload_view(9, 2)
        with pytest.raises(ValueError):
            section.prb_payload_view(14, 2)

    def test_deepcopy_materializes_view(self, rng):
        import copy

        section = UPlaneSection.from_samples(0, 0, random_prb_samples(rng, 4))
        message = UPlaneMessage(
            direction=Direction.DOWNLINK,
            time=SymbolTime(0, 0, 0, 0),
            sections=[section],
        )
        parsed = UPlaneMessage.unpack(message.pack())
        clone = copy.deepcopy(parsed)
        assert isinstance(clone.sections[0].payload, bytes)
        assert clone.sections[0].payload_bytes() == section.payload_bytes()


class TestUPlaneMessage:
    def make(self, rng, n_prbs=12, direction=Direction.DOWNLINK):
        section = UPlaneSection.from_samples(
            section_id=0, start_prb=0, samples=random_prb_samples(rng, n_prbs)
        )
        return UPlaneMessage(
            direction=direction,
            time=SymbolTime(46, 9, 1, 13),
            sections=[section],
        )

    def test_roundtrip(self, rng):
        message = self.make(rng)
        parsed = UPlaneMessage.unpack(message.pack())
        assert parsed.direction is Direction.DOWNLINK
        assert parsed.time == SymbolTime(46, 9, 1, 13)
        assert parsed.sections[0].payload == message.sections[0].payload

    def test_uplink_roundtrip(self, rng):
        parsed = UPlaneMessage.unpack(
            self.make(rng, direction=Direction.UPLINK).pack()
        )
        assert parsed.direction is Direction.UPLINK

    def test_multi_section_roundtrip(self, rng):
        sections = [
            UPlaneSection.from_samples(
                section_id=i, start_prb=i * 30,
                samples=random_prb_samples(rng, 10),
            )
            for i in range(3)
        ]
        message = UPlaneMessage(
            direction=Direction.UPLINK,
            time=SymbolTime(0, 0, 0, 0),
            sections=sections,
        )
        parsed = UPlaneMessage.unpack(message.pack())
        assert len(parsed.sections) == 3
        assert parsed.total_prbs() == 30
        for original, decoded in zip(sections, parsed.sections):
            assert decoded.payload == original.payload
            assert decoded.prb_range == original.prb_range

    def test_full_band_273_prbs(self, rng):
        """The ALL_PRBS encoding with carrier context (100 MHz cells)."""
        section = UPlaneSection.from_samples(
            section_id=0, start_prb=0, samples=random_prb_samples(rng, 273)
        )
        message = UPlaneMessage(
            direction=Direction.DOWNLINK,
            time=SymbolTime(0, 0, 0, 0),
            sections=[section],
        )
        parsed = UPlaneMessage.unpack(message.pack(), carrier_num_prb=273)
        assert parsed.sections[0].num_prb == 273
        assert parsed.sections[0].payload == section.payload

    def test_uncompressed_section_roundtrip(self, rng):
        config = CompressionConfig(iq_width=16, comp_meth=0)
        section = UPlaneSection.from_samples(
            section_id=1, start_prb=0,
            samples=random_prb_samples(rng, 4), compression=config,
        )
        message = UPlaneMessage(
            direction=Direction.DOWNLINK,
            time=SymbolTime(0, 0, 0, 0),
            sections=[section],
        )
        parsed = UPlaneMessage.unpack(message.pack())
        assert parsed.sections[0].compression.comp_meth == 0
        assert (
            parsed.sections[0].iq_samples() == section.iq_samples()
        ).all()

    def test_filter_index_roundtrip(self, rng):
        message = self.make(rng)
        message.filter_index = 1  # PRACH
        parsed = UPlaneMessage.unpack(message.pack())
        assert parsed.filter_index == 1

    def test_truncated_payload_raises(self, rng):
        data = self.make(rng).pack()
        with pytest.raises(ValueError):
            UPlaneMessage.unpack(data[:-5])
