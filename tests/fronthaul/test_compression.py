"""Block Floating Point compression tests (the Algorithm 1 substrate)."""

import json
import pathlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.fronthaul.compression import (
    MAX_WIRE_EXPONENT,
    NO_COMP_METH,
    SAMPLES_PER_PRB,
    BfpCompressor,
    CompressionConfig,
    clear_codec_memo,
    codec_memo_stats,
    merge_payloads,
)

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_bfp.json"


class TestCompressionConfig:
    def test_byte_roundtrip(self):
        config = CompressionConfig(iq_width=9)
        assert CompressionConfig.from_byte(config.to_byte()) == config

    def test_uncompressed_byte_roundtrip(self):
        config = CompressionConfig(iq_width=16, comp_meth=NO_COMP_METH)
        assert CompressionConfig.from_byte(config.to_byte()) == config

    def test_prb_payload_bytes_bfp9(self):
        # Figure 2: 9-bit mantissas -> 27 bytes of IQ + 1 exponent byte.
        assert CompressionConfig(iq_width=9).prb_payload_bytes() == 28

    def test_prb_payload_bytes_bfp14(self):
        assert CompressionConfig(iq_width=14).prb_payload_bytes() == 1 + 42

    def test_prb_payload_bytes_uncompressed(self):
        config = CompressionConfig(iq_width=16, comp_meth=NO_COMP_METH)
        assert config.prb_payload_bytes() == 48

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            CompressionConfig(iq_width=1)

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError):
            CompressionConfig(comp_meth=5)


class TestBfpExponents:
    def test_idle_prb_has_zero_exponent(self):
        """Near-zero samples compress with exponent 0 — what Algorithm 1
        keys on to mark PRBs idle."""
        compressor = BfpCompressor(CompressionConfig(iq_width=9))
        quiet = np.full((3, 24), 2, dtype=np.int16)
        assert (compressor.exponents_for(quiet) == 0).all()

    def test_loud_prb_has_positive_exponent(self):
        compressor = BfpCompressor(CompressionConfig(iq_width=9))
        loud = np.full((3, 24), 8000, dtype=np.int16)
        assert (compressor.exponents_for(loud) > 0).all()

    def test_exponent_scales_with_amplitude(self):
        compressor = BfpCompressor(CompressionConfig(iq_width=9))
        amplitudes = [100, 1000, 8000, 30000]
        exponents = [
            compressor.exponents_for(
                np.full((1, 24), amplitude, dtype=np.int16)
            )[0]
            for amplitude in amplitudes
        ]
        assert exponents == sorted(exponents)
        assert exponents[-1] > exponents[0]

    def test_exponent_exact_power_boundaries(self):
        compressor = BfpCompressor(CompressionConfig(iq_width=9))
        # 255 fits in 9 bits (needs 9), 256 needs 10 -> exponent 1.
        assert compressor.exponents_for(
            np.full((1, 24), 255, dtype=np.int16))[0] == 0
        assert compressor.exponents_for(
            np.full((1, 24), 256, dtype=np.int16))[0] == 1

    def test_negative_boundary(self):
        compressor = BfpCompressor(CompressionConfig(iq_width=9))
        # -256 fits exactly in 9 bits two's complement.
        assert compressor.exponents_for(
            np.full((1, 24), -256, dtype=np.int16))[0] == 0
        assert compressor.exponents_for(
            np.full((1, 24), -257, dtype=np.int16))[0] == 1


class TestBfpRoundtrip:
    @pytest.mark.parametrize("iq_width", [6, 8, 9, 12, 14, 16])
    def test_quantization_error_bounded(self, rng, iq_width):
        compressor = BfpCompressor(CompressionConfig(iq_width=iq_width))
        samples = rng.integers(-30000, 30000, size=(10, 24)).astype(np.int16)
        restored = compressor.decompress(compressor.compress(samples), 10)
        max_exponent = int(compressor.exponents_for(samples).max())
        # Error bounded by the quantization step.
        assert np.abs(
            restored.astype(int) - samples.astype(int)
        ).max() <= (1 << max_exponent)

    def test_lossless_when_width_sufficient(self, rng):
        compressor = BfpCompressor(CompressionConfig(iq_width=16))
        samples = rng.integers(-30000, 30000, size=(5, 24)).astype(np.int16)
        restored = compressor.decompress(compressor.compress(samples), 5)
        assert (restored == samples).all()

    def test_small_samples_lossless_at_width9(self, rng):
        compressor = BfpCompressor(CompressionConfig(iq_width=9))
        samples = rng.integers(-255, 255, size=(8, 24)).astype(np.int16)
        restored = compressor.decompress(compressor.compress(samples), 8)
        assert (restored == samples).all()

    def test_uncompressed_roundtrip(self, rng):
        compressor = BfpCompressor(
            CompressionConfig(iq_width=16, comp_meth=NO_COMP_METH)
        )
        samples = rng.integers(-30000, 30000, size=(4, 24)).astype(np.int16)
        restored = compressor.decompress(compressor.compress(samples), 4)
        assert (restored == samples).all()

    def test_wire_size_matches_config(self, rng):
        config = CompressionConfig(iq_width=9)
        compressor = BfpCompressor(config)
        samples = rng.integers(-4000, 4000, size=(7, 24)).astype(np.int16)
        assert len(compressor.compress(samples)) == 7 * config.prb_payload_bytes()

    def test_read_exponents_matches_compress(self, rng):
        compressor = BfpCompressor(CompressionConfig(iq_width=9))
        samples = rng.integers(-20000, 20000, size=(6, 24)).astype(np.int16)
        wire = compressor.compress(samples)
        assert (
            compressor.read_exponents(wire, 6)
            == compressor.exponents_for(samples)
        ).all()

    def test_truncated_payload_raises(self):
        compressor = BfpCompressor(CompressionConfig(iq_width=9))
        with pytest.raises(ValueError):
            compressor.decompress(b"\x00" * 10, 2)

    def test_read_exponents_rejects_uncompressed(self):
        compressor = BfpCompressor(
            CompressionConfig(iq_width=16, comp_meth=NO_COMP_METH)
        )
        with pytest.raises(ValueError):
            compressor.read_exponents(b"\x00" * 48, 1)

    def test_rejects_bad_shape(self):
        compressor = BfpCompressor()
        with pytest.raises(ValueError):
            compressor.exponents_for(np.zeros((3, 12), dtype=np.int16))

    @settings(max_examples=50, deadline=None)
    @given(
        samples=hnp.arrays(
            dtype=np.int16,
            shape=(4, 2 * SAMPLES_PER_PRB),
            elements=st.integers(min_value=-32768, max_value=32767),
        ),
        iq_width=st.sampled_from([8, 9, 12, 14]),
    )
    def test_roundtrip_error_bound_property(self, samples, iq_width):
        """Property: quantization error never exceeds one mantissa step."""
        compressor = BfpCompressor(CompressionConfig(iq_width=iq_width))
        wire = compressor.compress(samples)
        restored = compressor.decompress(wire, len(samples))
        exponents = compressor.exponents_for(samples)
        steps = (1 << exponents.astype(int))[:, None]
        assert (
            np.abs(restored.astype(int) - samples.astype(int)) <= steps
        ).all()

    @settings(max_examples=50, deadline=None)
    @given(
        samples=hnp.arrays(
            dtype=np.int16,
            shape=(3, 2 * SAMPLES_PER_PRB),
            elements=st.integers(min_value=-32768, max_value=32767),
        )
    )
    def test_double_compression_is_idempotent(self, samples):
        """Compressing an already-quantized signal is lossless — the DAS
        merge path (decompress, sum, recompress) relies on this."""
        compressor = BfpCompressor(CompressionConfig(iq_width=9))
        once = compressor.decompress(compressor.compress(samples), 3)
        twice = compressor.decompress(compressor.compress(once), 3)
        assert (once == twice).all()

    @settings(max_examples=30, deadline=None)
    @given(
        samples=hnp.arrays(
            dtype=np.int16,
            shape=(4, 2 * SAMPLES_PER_PRB),
            elements=st.integers(min_value=-32768, max_value=32767),
        ),
        iq_width=st.integers(min_value=2, max_value=16),
    )
    def test_roundtrip_all_widths_property(self, samples, iq_width):
        """Property over EVERY mantissa width 2..16: quantization error is
        bounded by one step and re-compressing the restored signal is
        exactly idempotent (wire bytes included)."""
        compressor = BfpCompressor(CompressionConfig(iq_width=iq_width))
        wire = compressor.compress(samples)
        restored = compressor.decompress(wire, len(samples))
        steps = (1 << compressor.exponents_for(samples).astype(int))[:, None]
        assert (
            np.abs(restored.astype(int) - samples.astype(int)) <= steps
        ).all()
        rewire = compressor.compress(restored)
        assert rewire == compressor.compress(
            compressor.decompress(rewire, len(samples))
        )


class TestExponentOverflow:
    """The wire nibble holds exponents 0..15; wider values must raise, not
    be silently masked (the seed's ``& 0x0F`` corruption bug)."""

    def test_int16_input_never_overflows(self, rng):
        compressor = BfpCompressor(CompressionConfig(iq_width=2))
        extremes = np.full((2, 24), -32768, dtype=np.int16)
        exponents, _ = compressor.compress_array(extremes)
        assert exponents.max() <= MAX_WIRE_EXPONENT

    def test_wide_accumulator_raises(self):
        compressor = BfpCompressor(CompressionConfig(iq_width=9))
        too_hot = np.full((1, 24), 1 << 25, dtype=np.int64)
        with pytest.raises(ValueError, match="exceeds the 4-bit wire field"):
            compressor.compress(too_hot)

    def test_wide_accumulator_raises_in_compress_array(self):
        compressor = BfpCompressor(CompressionConfig(iq_width=2))
        too_hot = np.full((3, 24), 1 << 20, dtype=np.int64)
        with pytest.raises(ValueError, match="exceeds the 4-bit wire field"):
            compressor.compress_array(too_hot)

    def test_saturated_input_compresses_fine(self):
        compressor = BfpCompressor(CompressionConfig(iq_width=9))
        hot = np.clip(
            np.full((1, 24), 1 << 25, dtype=np.int64), -32768, 32767
        )
        wire = compressor.compress(hot)
        assert len(wire) == compressor.config.prb_payload_bytes()


class TestGoldenWireBytes:
    """Wire-format compatibility: the vectorized codec must emit bytes
    identical to the seed (pre-optimization) implementation, pinned in
    ``golden_bfp.json`` for widths 8/9/14 and the uncompressed path."""

    @pytest.fixture(scope="class")
    def golden_cases(self):
        return json.loads(GOLDEN_PATH.read_text())

    def test_fixture_covers_required_configs(self, golden_cases):
        widths = {
            (case["iq_width"], case["comp_meth"]) for case in golden_cases
        }
        assert {(8, 1), (9, 1), (14, 1), (16, 0)} <= widths

    def test_compress_matches_golden_bytes(self, golden_cases):
        for case in golden_cases:
            config = CompressionConfig(
                iq_width=case["iq_width"], comp_meth=case["comp_meth"]
            )
            samples = np.array(case["samples"], dtype=np.int16)
            wire = BfpCompressor(config).compress(samples)
            assert wire.hex() == case["wire_hex"], case["label"]

    def test_decompress_golden_roundtrip(self, golden_cases):
        for case in golden_cases:
            config = CompressionConfig(
                iq_width=case["iq_width"], comp_meth=case["comp_meth"]
            )
            compressor = BfpCompressor(config)
            wire = bytes.fromhex(case["wire_hex"])
            restored = compressor.decompress(wire, case["n_prbs"])
            # Golden wire bytes re-compress to themselves (idempotence).
            assert compressor.compress(restored).hex() == case["wire_hex"]


class TestCodecMemo:
    """Repeated identical payloads (DAS replicate, RU-sharing demux) hit
    the LRU memo instead of re-running the codec."""

    def test_compress_memo_hit(self, rng):
        clear_codec_memo()
        compressor = BfpCompressor()
        samples = rng.integers(-8000, 8000, size=(20, 24)).astype(np.int16)
        first = compressor.compress(samples)
        second = compressor.compress(samples)
        assert first == second
        stats = codec_memo_stats()
        assert stats["compress_hits"] >= 1

    def test_parse_memo_hit(self, rng):
        clear_codec_memo()
        compressor = BfpCompressor()
        samples = rng.integers(-8000, 8000, size=(20, 24)).astype(np.int16)
        wire = compressor.compress(samples)
        exponents_a, mantissas_a = compressor.parse_wire(wire, 20)
        exponents_b, mantissas_b = compressor.parse_wire(wire, 20)
        assert mantissas_a is mantissas_b  # shared memo entry
        assert not mantissas_a.flags.writeable
        assert codec_memo_stats()["parse_hits"] >= 1

    def test_memo_distinguishes_configs(self, rng):
        clear_codec_memo()
        samples = rng.integers(-100, 100, size=(4, 24)).astype(np.int16)
        wire9 = BfpCompressor(CompressionConfig(iq_width=9)).compress(samples)
        wire14 = BfpCompressor(CompressionConfig(iq_width=14)).compress(samples)
        assert len(wire9) != len(wire14)


class TestBatchedHelpers:
    def test_decompress_stack_matches_sequential(self, rng):
        compressor = BfpCompressor()
        payloads = []
        expected = []
        for _ in range(4):
            samples = rng.integers(-9000, 9000, size=(6, 24)).astype(np.int16)
            wire = compressor.compress(samples)
            payloads.append(wire)
            expected.append(compressor.decompress(wire, 6))
        stack = compressor.decompress_stack(payloads, 6)
        assert stack.shape == (4, 6, 24)
        assert (stack == np.stack(expected)).all()

    def test_merge_payloads_matches_manual_sum(self, rng):
        config = CompressionConfig(iq_width=9)
        compressor = BfpCompressor(config)
        operands = [
            rng.integers(-8000, 8000, size=(5, 24)).astype(np.int16)
            for _ in range(3)
        ]
        payloads = [compressor.compress(op) for op in operands]
        merged_wire = merge_payloads(payloads, 5, config)
        total = np.zeros((5, 24), dtype=np.int64)
        for payload in payloads:
            total += compressor.decompress(payload, 5)
        manual = np.clip(total, -32768, 32767).astype(np.int16)
        assert merged_wire == compressor.compress(manual)
