"""C-plane message codec tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fronthaul.compression import CompressionConfig
from repro.fronthaul.cplane import (
    CPlaneMessage,
    CPlaneSection,
    Direction,
    SectionType,
)
from repro.fronthaul.timing import SymbolTime


def make_message(**kwargs):
    defaults = dict(
        direction=Direction.DOWNLINK,
        time=SymbolTime(46, 9, 1, 0),
        sections=[CPlaneSection(section_id=1, start_prb=0, num_prb=106)],
    )
    defaults.update(kwargs)
    return CPlaneMessage(**defaults)


class TestCPlaneSection:
    def test_prb_range(self):
        section = CPlaneSection(section_id=1, start_prb=10, num_prb=50)
        assert section.prb_range == (10, 60)

    def test_validation(self):
        with pytest.raises(ValueError):
            CPlaneSection(section_id=4096, start_prb=0, num_prb=1)
        with pytest.raises(ValueError):
            CPlaneSection(section_id=0, start_prb=1024, num_prb=1)
        with pytest.raises(ValueError):
            CPlaneSection(section_id=0, start_prb=0, num_prb=1, num_symbols=0)

    def test_type3_requires_freq_offset(self):
        section = CPlaneSection(section_id=0, start_prb=0, num_prb=12)
        with pytest.raises(ValueError):
            section.pack(SectionType.PRACH)


class TestCPlaneMessage:
    def test_type1_roundtrip(self):
        message = make_message()
        parsed = CPlaneMessage.unpack(message.pack())
        assert parsed.direction is Direction.DOWNLINK
        assert parsed.time == message.time
        assert len(parsed.sections) == 1
        section = parsed.sections[0]
        assert section.section_id == 1
        assert section.prb_range == (0, 106)
        assert parsed.section_type is SectionType.DATA

    def test_uplink_direction_roundtrip(self):
        parsed = CPlaneMessage.unpack(
            make_message(direction=Direction.UPLINK).pack()
        )
        assert parsed.direction is Direction.UPLINK

    def test_multiple_sections(self):
        message = make_message(
            sections=[
                CPlaneSection(section_id=i, start_prb=i * 20, num_prb=20)
                for i in range(5)
            ]
        )
        parsed = CPlaneMessage.unpack(message.pack())
        assert [s.section_id for s in parsed.sections] == list(range(5))
        assert parsed.total_prbs() == 100

    def test_all_prbs_encoding(self):
        """numPrb > 255 uses the ALL_PRBS=0 wire convention and needs the
        carrier size to parse back (the 273-PRB case)."""
        message = make_message(
            sections=[CPlaneSection(section_id=0, start_prb=0, num_prb=273)]
        )
        parsed = CPlaneMessage.unpack(message.pack(), carrier_num_prb=273)
        assert parsed.sections[0].num_prb == 273

    def test_all_prbs_without_context_raises(self):
        message = make_message(
            sections=[CPlaneSection(section_id=0, start_prb=0, num_prb=273)]
        )
        with pytest.raises(ValueError):
            CPlaneMessage.unpack(message.pack())

    def test_compression_header_roundtrip(self):
        message = make_message(compression=CompressionConfig(iq_width=14))
        parsed = CPlaneMessage.unpack(message.pack())
        assert parsed.compression.iq_width == 14

    def test_type3_roundtrip_with_negative_offset(self):
        message = make_message(
            direction=Direction.UPLINK,
            section_type=SectionType.PRACH,
            sections=[
                CPlaneSection(
                    section_id=7, start_prb=0, num_prb=12, freq_offset=-1272
                )
            ],
            time_offset=100,
            frame_structure=0x41,
            cp_length=22,
            filter_index=1,
        )
        parsed = CPlaneMessage.unpack(message.pack())
        assert parsed.section_type is SectionType.PRACH
        assert parsed.sections[0].freq_offset == -1272
        assert parsed.time_offset == 100
        assert parsed.frame_structure == 0x41
        assert parsed.cp_length == 22
        assert parsed.filter_index == 1

    def test_beam_and_remask_fields(self):
        message = make_message(
            sections=[
                CPlaneSection(
                    section_id=9, start_prb=4, num_prb=8, re_mask=0xABC,
                    beam_id=1234, num_symbols=9,
                )
            ]
        )
        parsed = CPlaneMessage.unpack(message.pack())
        section = parsed.sections[0]
        assert section.re_mask == 0xABC
        assert section.beam_id == 1234
        assert section.num_symbols == 9

    def test_truncated_raises(self):
        with pytest.raises(ValueError):
            CPlaneMessage.unpack(make_message().pack()[:6])

    @settings(max_examples=60, deadline=None)
    @given(
        section_id=st.integers(min_value=0, max_value=4095),
        start_prb=st.integers(min_value=0, max_value=1023),
        num_prb=st.integers(min_value=1, max_value=255),
        num_symbols=st.integers(min_value=1, max_value=14),
        frame=st.integers(min_value=0, max_value=255),
        subframe=st.integers(min_value=0, max_value=9),
        slot=st.integers(min_value=0, max_value=1),
        symbol=st.integers(min_value=0, max_value=13),
    )
    def test_roundtrip_property(
        self, section_id, start_prb, num_prb, num_symbols, frame, subframe,
        slot, symbol,
    ):
        message = CPlaneMessage(
            direction=Direction.DOWNLINK,
            time=SymbolTime(frame, subframe, slot, symbol),
            sections=[
                CPlaneSection(
                    section_id=section_id,
                    start_prb=start_prb,
                    num_prb=num_prb,
                    num_symbols=num_symbols,
                )
            ],
        )
        parsed = CPlaneMessage.unpack(message.pack())
        assert parsed.time == message.time
        section = parsed.sections[0]
        assert section.section_id == section_id
        assert section.start_prb == start_prb
        assert section.num_prb == num_prb
        assert section.num_symbols == num_symbols
