"""eCPRI header and eAxC id tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fronthaul.ecpri import (
    ECPRI_HEADER_SIZE,
    EAxCId,
    EcpriHeader,
    EcpriMessageType,
)


class TestEAxCId:
    def test_int_roundtrip(self):
        eaxc = EAxCId(du_port=3, band_sector=1, cc=2, ru_port=7)
        assert EAxCId.from_int(eaxc.to_int()) == eaxc

    def test_default_widths_layout(self):
        # 4/4/4/4: du_port in the top nibble, ru_port in the bottom.
        eaxc = EAxCId(du_port=0xA, band_sector=0xB, cc=0xC, ru_port=0xD)
        assert eaxc.to_int() == 0xABCD

    def test_custom_widths(self):
        eaxc = EAxCId(du_port=1, band_sector=0, cc=0, ru_port=200,
                      widths=(2, 2, 4, 8))
        parsed = EAxCId.from_int(eaxc.to_int(), widths=(2, 2, 4, 8))
        assert parsed.ru_port == 200
        assert parsed.du_port == 1

    def test_rejects_bad_widths(self):
        with pytest.raises(ValueError):
            EAxCId(du_port=0, widths=(4, 4, 4, 5))

    def test_rejects_field_overflow(self):
        with pytest.raises(ValueError):
            EAxCId(du_port=16)  # 4-bit field

    def test_with_ru_port_preserves_other_fields(self):
        """The dMIMO remap: only the RU port changes."""
        eaxc = EAxCId(du_port=5, band_sector=2, cc=1, ru_port=3)
        remapped = eaxc.with_ru_port(0)
        assert remapped.ru_port == 0
        assert remapped.du_port == 5
        assert remapped.band_sector == 2
        assert remapped.cc == 1

    @given(st.integers(min_value=0, max_value=0xFFFF))
    def test_int_roundtrip_property(self, value):
        assert EAxCId.from_int(value).to_int() == value


class TestEcpriHeader:
    def make(self, **kwargs):
        defaults = dict(
            message_type=EcpriMessageType.IQ_DATA,
            payload_size=1234,
            eaxc=EAxCId(du_port=1, ru_port=2),
            seq_id=77,
        )
        defaults.update(kwargs)
        return EcpriHeader(**defaults)

    def test_roundtrip(self):
        header = self.make()
        packed = header.pack()
        assert len(packed) == ECPRI_HEADER_SIZE
        parsed, consumed = EcpriHeader.unpack(packed)
        assert consumed == ECPRI_HEADER_SIZE
        assert parsed.message_type is EcpriMessageType.IQ_DATA
        assert parsed.payload_size == 1234
        assert parsed.eaxc == header.eaxc
        assert parsed.seq_id == 77
        assert parsed.e_bit is True
        assert parsed.sub_seq_id == 0

    def test_cplane_message_type(self):
        parsed, _ = EcpriHeader.unpack(
            self.make(message_type=EcpriMessageType.RT_CONTROL).pack()
        )
        assert parsed.message_type is EcpriMessageType.RT_CONTROL

    def test_seq_id_wraps_byte(self):
        parsed, _ = EcpriHeader.unpack(self.make(seq_id=300).pack())
        assert parsed.seq_id == 300 % 256

    def test_sub_seq_id_and_e_bit(self):
        parsed, _ = EcpriHeader.unpack(
            self.make(e_bit=False, sub_seq_id=5).pack()
        )
        assert parsed.e_bit is False
        assert parsed.sub_seq_id == 5

    def test_truncated_raises(self):
        with pytest.raises(ValueError):
            EcpriHeader.unpack(b"\x10\x00\x00")

    def test_bad_version_raises(self):
        data = bytearray(self.make().pack())
        data[0] = 0x20  # version 2
        with pytest.raises(ValueError):
            EcpriHeader.unpack(bytes(data))
