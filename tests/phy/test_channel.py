"""Channel model tests: path loss, RSRP, SINR, floor isolation."""

import numpy as np
import pytest

from repro.phy.channel import (
    ATTACH_RSRP_THRESHOLD_DBM,
    ChannelModel,
    LinkBudget,
    PathLossParams,
    db_to_linear,
    linear_to_db,
    noise_power_dbm,
)
from repro.phy.geometry import Position


class TestDbHelpers:
    def test_roundtrip(self):
        assert linear_to_db(db_to_linear(13.7)) == pytest.approx(13.7)

    def test_zero_linear_is_minus_inf(self):
        assert linear_to_db(0) == float("-inf")


class TestNoisePower:
    def test_100mhz_noise_floor(self):
        # -174 + 10log10(98.28 MHz) + 7 dB NF ~= -87 dBm.
        noise = noise_power_dbm(273 * 12 * 30e3)
        assert noise == pytest.approx(-87.1, abs=0.3)

    def test_scales_with_bandwidth(self):
        assert noise_power_dbm(40e6) < noise_power_dbm(100e6)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            noise_power_dbm(0)


class TestPathLoss:
    def test_monotonic_in_distance(self):
        params = PathLossParams(shadowing_sigma_db=0)
        losses = [params.path_loss_db(d) for d in (1, 5, 10, 30, 60)]
        assert losses == sorted(losses)

    def test_nlos_steeper_than_los(self):
        params = PathLossParams()
        near_slope = params.path_loss_db(4) - params.path_loss_db(2)
        far_slope = params.path_loss_db(40) - params.path_loss_db(20)
        assert far_slope > near_slope

    def test_floor_penetration_added(self):
        params = PathLossParams()
        assert params.path_loss_db(10, floors=1) == pytest.approx(
            params.path_loss_db(10) + params.floor_penetration_db
        )

    def test_distance_clamped_below_1m(self):
        params = PathLossParams()
        assert params.path_loss_db(0.1) == params.path_loss_db(1.0)


class TestChannelModel:
    def setup_method(self):
        self.channel = ChannelModel(seed=42)
        self.budget = LinkBudget()
        self.ru = Position(10, 10, 0, height=3.0)

    def test_shadowing_deterministic_per_pair(self):
        ue = Position(20, 12, 0)
        assert self.channel.path_gain_db(self.ru, ue) == self.channel.path_gain_db(
            self.ru, ue
        )

    def test_shadowing_differs_between_pairs(self):
        gains = {
            round(self.channel.path_gain_db(self.ru, Position(20 + i, 12, 0)), 6)
            for i in range(8)
        }
        assert len(gains) > 1

    def test_different_seeds_differ(self):
        other = ChannelModel(seed=43)
        ue = Position(25, 5, 0)
        assert self.channel.path_gain_db(self.ru, ue) != other.path_gain_db(
            self.ru, ue
        )

    def test_rsrp_decreases_with_distance(self):
        rsrps = [
            self.channel.rsrp_per_re_dbm(
                self.budget, self.ru, Position(10 + d, 10, 0), 3276
            )
            for d in (2, 10, 30)
        ]
        assert rsrps == sorted(rsrps, reverse=True)

    def test_near_ue_attaches_far_floor_does_not(self):
        """Section 6.2.1: same-floor UEs attach; upper-floor UEs cannot."""
        near = self.channel.rsrp_per_re_dbm(
            self.budget, self.ru, Position(13, 10, 0), 3276
        )
        two_floors = self.channel.rsrp_per_re_dbm(
            self.budget, self.ru, Position(13, 10, 2), 3276
        )
        assert near > ATTACH_RSRP_THRESHOLD_DBM
        assert two_floors < ATTACH_RSRP_THRESHOLD_DBM

    def test_far_corner_same_floor_attaches(self):
        corner = self.channel.rsrp_per_re_dbm(
            self.budget, self.ru, Position(50, 20, 0), 3276
        )
        assert corner > ATTACH_RSRP_THRESHOLD_DBM

    def test_rsrp_per_re_below_wideband(self):
        ue = Position(15, 10, 0)
        wideband = self.channel.rsrp_dbm(self.budget, self.ru, ue)
        per_re = self.channel.rsrp_per_re_dbm(self.budget, self.ru, ue, 3276)
        assert per_re == pytest.approx(wideband - 10 * np.log10(3276))

    def test_sinr_without_interference_is_snr(self):
        ue = Position(14, 10, 0)
        bandwidth = 273 * 12 * 30e3
        snr = self.channel.sinr_db(self.budget, [self.ru], ue, bandwidth)
        assert snr > 30  # near UE: very high SNR

    def test_interference_reduces_sinr(self):
        ue = Position(14, 10, 0)
        interferer = Position(20, 10, 0, height=3.0)
        bandwidth = 273 * 12 * 30e3
        clean = self.channel.sinr_db(self.budget, [self.ru], ue, bandwidth)
        loaded = self.channel.sinr_db(
            self.budget, [self.ru], ue, bandwidth,
            interferers=[(interferer, 1.0)],
        )
        half = self.channel.sinr_db(
            self.budget, [self.ru], ue, bandwidth,
            interferers=[(interferer, 0.5)],
        )
        assert loaded < half < clean

    def test_das_combining_raises_sinr(self):
        """DAS: multiple RUs transmitting the same signal add power."""
        ue = Position(25, 10, 0)
        second = Position(30, 10, 0, height=3.0)
        bandwidth = 273 * 12 * 30e3
        single = self.channel.sinr_db(self.budget, [self.ru], ue, bandwidth)
        combined = self.channel.sinr_db(
            self.budget, [self.ru, second], ue, bandwidth
        )
        assert combined > single

    def test_apply_to_iq_gain(self, rng):
        iq = np.ones(24, dtype=complex)
        out = self.channel.apply_to_iq(iq, gain_db=-20.0)
        assert np.abs(out).mean() == pytest.approx(0.1, rel=1e-6)

    def test_apply_to_iq_noise_scales_with_snr(self, rng):
        iq = np.ones(4096, dtype=complex)
        clean = self.channel.apply_to_iq(iq, 0.0, snr_db=40, rng=rng)
        noisy = self.channel.apply_to_iq(iq, 0.0, snr_db=0, rng=rng)
        assert np.abs(noisy - iq).std() > np.abs(clean - iq).std()
