"""Building geometry tests (the Figure 9a testbed)."""

import math

import pytest

from repro.phy.geometry import (
    FLOOR_HEIGHT_M,
    FloorPlan,
    Position,
    WalkPath,
    nearest_index,
)


class TestPosition:
    def test_same_point_distance_zero(self):
        p = Position(5, 5, 0)
        assert p.distance_to(p) == 0

    def test_planar_distance(self):
        a = Position(0, 0, 0, height=1.5)
        b = Position(3, 4, 0, height=1.5)
        assert a.distance_to(b) == pytest.approx(5.0)

    def test_floor_distance_includes_height(self):
        a = Position(0, 0, 0, height=1.5)
        b = Position(0, 0, 2, height=1.5)
        assert a.distance_to(b) == pytest.approx(2 * FLOOR_HEIGHT_M)

    def test_floors_between(self):
        assert Position(0, 0, 1).floors_between(Position(0, 0, 4)) == 3

    def test_symmetry(self):
        a = Position(1, 2, 0)
        b = Position(9, 3, 2)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))


class TestFloorPlan:
    def test_four_rus_per_floor(self):
        plan = FloorPlan()
        rus = plan.ru_positions(0)
        assert len(rus) == 4
        assert all(ru.floor == 0 for ru in rus)

    def test_rus_within_floor_bounds(self):
        plan = FloorPlan()
        for ru in plan.ru_positions(2):
            assert 0 < ru.x < plan.length_m
            assert 0 < ru.y < plan.width_m
            assert ru.floor == 2

    def test_rus_evenly_spread(self):
        plan = FloorPlan()
        xs = [ru.x for ru in plan.ru_positions(0)]
        gaps = [b - a for a, b in zip(xs, xs[1:])]
        assert all(gap == pytest.approx(gaps[0]) for gap in gaps)

    def test_all_ru_positions_count(self):
        plan = FloorPlan()
        assert len(plan.all_ru_positions()) == 20  # 5 floors x 4 RUs

    def test_invalid_floor_raises(self):
        with pytest.raises(ValueError):
            FloorPlan().ru_positions(5)

    def test_grid_points_cover_floor(self):
        plan = FloorPlan()
        points = plan.grid_points(0, step_m=5.0)
        assert len(points) > 20
        assert all(p.floor == 0 for p in points)
        assert max(p.x for p in points) > plan.length_m * 0.8


class TestWalkPath:
    def test_points_stay_on_floor(self):
        for point in WalkPath(floor=1).points(2.0):
            assert point.floor == 1

    def test_points_within_bounds(self):
        plan = FloorPlan()
        for point in WalkPath(floor=0).points(1.0):
            assert 0 <= point.x <= plan.length_m
            assert 0 <= point.y <= plan.width_m

    def test_step_spacing(self):
        points = list(WalkPath(floor=0).points(2.0))
        for a, b in zip(points, points[1:]):
            step = math.hypot(b.x - a.x, b.y - a.y)
            assert step <= 2.5  # allow corner turns

    def test_covers_floor_length(self):
        points = list(WalkPath(floor=0).points(1.0))
        xs = [p.x for p in points]
        assert max(xs) - min(xs) > 40  # most of the 50.9 m length


class TestNearestIndex:
    def test_picks_closest(self):
        plan = FloorPlan()
        rus = plan.ru_positions(0)
        near_first = Position(rus[0].x + 1, rus[0].y, 0)
        assert nearest_index(near_first, rus) == 0
        near_last = Position(rus[-1].x - 1, rus[-1].y, 0)
        assert nearest_index(near_last, rus) == 3

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            nearest_index(Position(0, 0, 0), [])
