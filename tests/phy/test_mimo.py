"""MIMO link model tests: rank selection, SE, throughput calibration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fronthaul.timing import TddPattern
from repro.phy.mimo import (
    MAX_SE_BITS_PER_HZ,
    MimoLink,
    spectral_efficiency,
    throughput_mbps,
)

BW_100MHZ = 273 * 12 * 30e3
DL_FRACTION = TddPattern().downlink_symbol_fraction()


class TestSpectralEfficiency:
    def test_monotonic_in_sinr(self):
        values = [spectral_efficiency(s) for s in (-5, 0, 10, 20, 30)]
        assert values == sorted(values)

    def test_capped_at_max(self):
        assert spectral_efficiency(60.0) == MAX_SE_BITS_PER_HZ

    def test_custom_cap(self):
        assert spectral_efficiency(60.0, max_se=3.0) == 3.0

    def test_zero_at_very_low_sinr(self):
        assert spectral_efficiency(-30.0) < 0.01


class TestMimoLink:
    def test_rank_matches_antennas_at_high_snr(self):
        """Table 2's rank indicators: 2 antennas -> rank 2, 4 -> rank 4."""
        assert MimoLink.colocated(55.0, 2).best_rank() == 2
        assert MimoLink.colocated(55.0, 4).best_rank() == 4

    def test_rank1_beamforming_gain(self):
        """Rank 1 from a 4-port array gets the full power budget: ~6 dB
        above the per-port SNR (precoding gain)."""
        link = MimoLink.colocated(10.0, 4)
        assert link.layer_sinrs_db(1)[0] == pytest.approx(16.0, abs=0.5)

    def test_aggregate_se_increases_with_antennas(self):
        se = [
            MimoLink.colocated(55.0, n).aggregate_se() for n in (1, 2, 4)
        ]
        assert se == sorted(se)

    def test_rank_sublinear_scaling(self):
        """Table 2: 4 layers is ~1.4x of 2 layers, not 2x (inter-layer
        interference), matching 898/653."""
        two = MimoLink.colocated(55.0, 2).aggregate_se()
        four = MimoLink.colocated(55.0, 4).aggregate_se()
        assert 1.2 < four / two < 1.6

    def test_layer_sinr_decreases_with_rank(self):
        link = MimoLink.colocated(50.0, 4)
        sinrs = [max(link.layer_sinrs_db(rank)) for rank in (1, 2, 4)]
        assert sinrs == sorted(sinrs, reverse=True)

    def test_distributed_unequal_groups(self):
        """A UE near one dMIMO RU: strong layers from it, weaker from the
        far RU — aggregate lands between rank-2 and colocated rank-4."""
        near_only = MimoLink.colocated(55.0, 2).aggregate_se()
        colocated = MimoLink.colocated(55.0, 4).aggregate_se()
        distributed = MimoLink.distributed([(55.0, 2), (48.0, 2)]).aggregate_se()
        assert near_only < distributed < colocated

    def test_distributed_never_below_strong_group_alone(self):
        """Adding far antennas never hurts: the link can always fall back
        to the strong group's rank."""
        strong_alone = MimoLink.colocated(55.0, 2).aggregate_se()
        with_weak = MimoLink.distributed([(55.0, 2), (25.0, 2)]).aggregate_se()
        assert with_weak >= strong_alone - 1e-9

    def test_distributed_equal_matches_colocated(self):
        colocated = MimoLink.colocated(50.0, 4).aggregate_se()
        distributed = MimoLink.distributed([(50.0, 2), (50.0, 2)]).aggregate_se()
        assert distributed == pytest.approx(colocated)

    def test_max_layers_caps_rank(self):
        assert MimoLink.colocated(55.0, 4, max_layers=2).best_rank() == 2

    def test_invalid_rank_raises(self):
        link = MimoLink.colocated(30.0, 2)
        with pytest.raises(ValueError):
            link.layer_sinrs_db(3)

    def test_empty_antennas_rejected(self):
        with pytest.raises(ValueError):
            MimoLink(antenna_sinrs_db=())

    @settings(max_examples=40, deadline=None)
    @given(sinr=st.floats(min_value=-10, max_value=60))
    def test_best_rank_is_argmax_property(self, sinr):
        link = MimoLink.colocated(sinr, 4)
        best = link.best_rank()
        best_se = link.rank_aggregate_se(best)
        for rank in range(1, 5):
            assert best_se >= link.rank_aggregate_se(rank) - 1e-9


class TestThroughput:
    def test_calibration_100mhz_4x4(self):
        """The paper's headline number: ~900 Mbps for 100 MHz 4x4."""
        link = MimoLink.colocated(60.0, 4)
        mbps = throughput_mbps(link.aggregate_se(), BW_100MHZ, DL_FRACTION)
        assert 850 <= mbps <= 960

    def test_calibration_2_layers(self):
        """Table 2: ~650 Mbps for 2 layers."""
        link = MimoLink.colocated(60.0, 2)
        mbps = throughput_mbps(link.aggregate_se(), BW_100MHZ, DL_FRACTION)
        assert 600 <= mbps <= 720

    def test_scales_with_bandwidth(self):
        se = MimoLink.colocated(50.0, 4).aggregate_se()
        full = throughput_mbps(se, BW_100MHZ, DL_FRACTION)
        narrow = throughput_mbps(se, BW_100MHZ * 0.4, DL_FRACTION)
        assert narrow == pytest.approx(full * 0.4)

    def test_direction_fraction_bounds(self):
        with pytest.raises(ValueError):
            throughput_mbps(4.0, BW_100MHZ, 1.5)
        with pytest.raises(ValueError):
            throughput_mbps(4.0, BW_100MHZ, 0.5, overhead_fraction=1.0)

    def test_zero_fraction_zero_throughput(self):
        assert throughput_mbps(4.0, BW_100MHZ, 0.0) == 0.0
