"""IQ grid, QAM and fixed-point conversion tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.iq import (
    QamModulator,
    ResourceGrid,
    int16_to_iq,
    iq_to_int16,
    random_qam_grid,
)


class TestQamModulator:
    @pytest.mark.parametrize("order", [4, 16, 64, 256])
    def test_roundtrip_noiseless(self, order, rng):
        modulator = QamModulator(order)
        symbols = rng.integers(0, order, 500)
        assert (modulator.demodulate(modulator.modulate(symbols)) == symbols).all()

    @pytest.mark.parametrize("order", [4, 16, 64, 256])
    def test_unit_average_energy(self, order):
        modulator = QamModulator(order)
        points = modulator.modulate(np.arange(order))
        assert float(np.mean(np.abs(points) ** 2)) == pytest.approx(1.0)

    def test_constellation_distinct(self):
        modulator = QamModulator(16)
        points = modulator.modulate(np.arange(16))
        assert len(set(np.round(points, 9))) == 16

    def test_roundtrip_with_mild_noise(self, rng):
        modulator = QamModulator(16)
        symbols = rng.integers(0, 16, 2000)
        noisy = modulator.modulate(symbols) + 0.05 * (
            rng.normal(size=2000) + 1j * rng.normal(size=2000)
        )
        errors = (modulator.demodulate(noisy) != symbols).sum()
        assert errors == 0

    def test_heavy_noise_causes_errors(self, rng):
        modulator = QamModulator(256)
        symbols = rng.integers(0, 256, 2000)
        noisy = modulator.modulate(symbols) + 0.5 * (
            rng.normal(size=2000) + 1j * rng.normal(size=2000)
        )
        errors = (modulator.demodulate(noisy) != symbols).sum()
        assert errors > 0

    def test_rejects_unknown_order(self):
        with pytest.raises(ValueError):
            QamModulator(32)

    def test_rejects_out_of_range_symbols(self):
        with pytest.raises(ValueError):
            QamModulator(4).modulate(np.array([4]))

    def test_gray_mapping_adjacent_levels_differ_one_bit(self):
        modulator = QamModulator(16)
        # Adjacent I-levels at fixed Q must differ in exactly one bit of
        # the I half (Gray property).
        for left, right in zip(modulator._gray[:-1], modulator._gray[1:]):
            assert bin(int(left) ^ int(right)).count("1") == 1


class TestFixedPoint:
    def test_roundtrip_error_small(self, rng):
        grid = (rng.normal(size=48) + 1j * rng.normal(size=48)) * 0.3
        restored = int16_to_iq(iq_to_int16(grid))
        assert np.abs(restored - grid).max() < 1e-3

    def test_shape_conversion(self, rng):
        grid = rng.normal(size=(2, 120)) + 1j * rng.normal(size=(2, 120))
        fixed = iq_to_int16(grid * 0.1)
        assert fixed.shape == (2, 10, 24)
        assert int16_to_iq(fixed).shape == (2, 120)

    def test_interleaving_order(self):
        grid = np.array([1 + 2j] + [0] * 11) * 0.01
        fixed = iq_to_int16(grid)
        assert fixed.shape == (1, 24)
        assert fixed[0, 0] > 0  # I0
        assert fixed[0, 1] == 2 * fixed[0, 0]  # Q0 = 2 * I0

    def test_clipping_at_full_scale(self):
        grid = np.full(12, 100.0 + 100.0j)
        fixed = iq_to_int16(grid)
        assert fixed.max() == 32767

    def test_rejects_partial_prb(self, rng):
        with pytest.raises(ValueError):
            iq_to_int16(rng.normal(size=13) + 0j)

    @settings(max_examples=30, deadline=None)
    @given(backoff=st.floats(min_value=0.05, max_value=0.9))
    def test_backoff_roundtrip_property(self, backoff, ):
        rng = np.random.default_rng(0)
        grid = (rng.normal(size=24) + 1j * rng.normal(size=24)) * 0.2
        restored = int16_to_iq(iq_to_int16(grid, backoff), backoff)
        assert np.abs(restored - grid).max() < 1e-2


class TestResourceGrid:
    def test_default_zero_grid(self):
        grid = ResourceGrid(layers=2, n_prbs=10)
        assert grid.data.shape == (2, 120)
        assert not grid.data.any()

    def test_fill_and_slice(self, rng):
        grid = ResourceGrid(layers=1, n_prbs=20)
        values = rng.normal(size=36) + 1j * rng.normal(size=36)
        grid.fill_prbs(0, 5, values)
        assert (grid.prb_slice(0, 5, 3) == values).all()
        assert not grid.prb_slice(0, 0, 5).any()

    def test_int16_roundtrip(self, rng):
        grid, _ = random_qam_grid(8, layers=2, rng=rng)
        fixed = grid.to_int16(0)
        assert fixed.shape == (8, 24)
        rebuilt = ResourceGrid.from_int16([grid.to_int16(0), grid.to_int16(1)])
        assert np.abs(rebuilt.data - grid.data).max() < 1e-3

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ResourceGrid(layers=1, n_prbs=2, data=np.zeros((1, 10)))

    def test_random_qam_grid_decodes(self, rng):
        grid, symbols = random_qam_grid(4, layers=2, order=16, rng=rng)
        modulator = QamModulator(16)
        assert (modulator.demodulate(grid.data) == symbols).all()
