"""The unified ``process_uplink`` entrypoint (the only uplink entrypoint).

The ``process_uplink_from`` alias PR 4 deprecated is gone: in-repo
callers migrated then, CI has run ``-W error::DeprecationWarning`` since,
and this suite pins both that the attribute no longer exists and that a
full network slot stays warning-clean.
"""

import warnings

import pytest

from repro.core.chain import MiddleboxChain
from repro.core.middlebox import Middlebox
from repro.fronthaul.cplane import CPlaneMessage, CPlaneSection, Direction
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.packet import make_packet
from repro.fronthaul.timing import SymbolTime


def ul_packet():
    return make_packet(
        MacAddress.from_int(2),
        MacAddress.from_int(1),
        CPlaneMessage(
            direction=Direction.UPLINK,
            time=SymbolTime(0, 0, 0, 0),
            sections=[CPlaneSection(0, 0, 50)],
        ),
    )


class Tracer(Middlebox):
    app_name = "tracer"

    def __init__(self, log=None, **kwargs):
        super().__init__(**kwargs)
        self.log = log if log is not None else []

    def on_cplane(self, ctx, pkt):
        self.log.append(self.name)
        ctx.forward(pkt)

    on_uplane = on_cplane


class Holder(Tracer):
    """A stage with DAS-like deadline-hold capability."""

    app_name = "holder"

    def flush_deadline(self, slot):  # pragma: no cover - marker only
        return []


def make_chain(log):
    boxes = [
        Tracer(name="first", log=log),
        Holder(name="holder", log=log),
        Tracer(name="last", log=log),
    ]
    return MiddleboxChain(boxes, name="t"), boxes


class TestProcessUplink:
    def test_full_chain_runs_in_reverse(self):
        log = []
        chain, _ = make_chain(log)
        out = chain.process_uplink([ul_packet()])
        assert len(out) == 1
        assert log == ["last", "holder", "first"]

    def test_source_by_index_runs_upstream_stages_only(self):
        log = []
        chain, _ = make_chain(log)
        chain.process_uplink([ul_packet()], source=1)
        assert log == ["first"]

    def test_source_by_object_matches_index(self):
        log = []
        chain, boxes = make_chain(log)
        chain.process_uplink([ul_packet()], source=boxes[2])
        assert log == ["holder", "first"]

    def test_source_by_name(self):
        log = []
        chain, _ = make_chain(log)
        chain.process_uplink([ul_packet()], source="holder")
        assert log == ["first"]

    def test_unknown_source_raises(self):
        chain, _ = make_chain([])
        with pytest.raises((KeyError, ValueError)):
            chain.process_uplink([ul_packet()], source="nope")

    def test_deadline_flush_false_bypasses_holding_stages(self):
        log = []
        chain, _ = make_chain(log)
        chain.process_uplink([ul_packet()], deadline_flush=False)
        assert log == ["last", "first"]
        assert chain.hold_bypassed == 1

    def test_empty_upstream_returns_copy(self):
        chain, _ = make_chain([])
        packets = [ul_packet()]
        out = chain.process_uplink(packets, source=0)
        assert out == packets and out is not packets


class TestAliasRemoved:
    def test_deprecated_alias_is_gone(self):
        """The PR 4 migration window is closed: the alias must not
        linger as silent API surface."""
        chain, _ = make_chain([])
        assert not hasattr(chain, "process_uplink_from")

    def test_no_repo_code_triggers_the_warning(self):
        """In-repo callers are migrated: a full network slot under
        ``-W error::DeprecationWarning`` must not raise."""
        from repro.ran.cell import CellConfig
        from repro.ran.du import DistributedUnit
        from repro.ran.ru import RadioUnit, RuConfig
        from repro.sim.network_sim import FronthaulNetwork
        from repro.apps.das import DasMiddlebox

        cell = CellConfig(pci=1, bandwidth_hz=20_000_000, n_antennas=2,
                          max_dl_layers=2)
        du = DistributedUnit(du_id=1, cell=cell, symbols_per_slot=1)
        rus = [
            RadioUnit(
                ru_id=i + 1,
                config=RuConfig(num_prb=cell.num_prb, n_antennas=2),
                du_mac=du.mac,
            )
            for i in range(2)
        ]
        das = DasMiddlebox(du_mac=du.mac, ru_macs=[ru.mac for ru in rus],
                           partial_merge=True)
        network = FronthaulNetwork(middleboxes=[das], deadline_flush=True)
        network.add_du(du)
        for ru in rus:
            network.add_ru(ru)
        du.scheduler.add_ue("u1", dl_layers=1)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            network.run(2)
