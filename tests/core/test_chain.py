"""Switch fabric and middlebox chaining tests."""

import pytest

from repro.core.chain import (
    FronthaulSwitch,
    MiddleboxChain,
    PortRole,
    SwitchLoopError,
)
from repro.core.middlebox import Middlebox
from repro.fronthaul.cplane import CPlaneMessage, CPlaneSection, Direction
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.packet import make_packet
from repro.fronthaul.timing import SymbolTime


def packet(src, dst):
    return make_packet(
        src, dst,
        CPlaneMessage(
            direction=Direction.DOWNLINK,
            time=SymbolTime(0, 0, 0, 0),
            sections=[CPlaneSection(0, 0, 50)],
        ),
    )


class Tagger(Middlebox):
    """Test middlebox that counts and forwards."""

    app_name = "tagger"

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.seen = 0

    def on_cplane(self, ctx, pkt):
        self.seen += 1
        ctx.forward(pkt)

    on_uplane = on_cplane


class TestFronthaulSwitch:
    def setup_method(self):
        self.switch = FronthaulSwitch()
        self.du_mac = MacAddress.from_int(1)
        self.ru_mac = MacAddress.from_int(2)
        self.du_rx = []
        self.ru_rx = []
        self.switch.attach("du", PortRole.DU, [self.du_mac], self.du_rx.append)
        self.switch.attach("ru", PortRole.RU, [self.ru_mac], self.ru_rx.append)

    def test_delivers_by_mac(self):
        self.switch.inject(packet(self.du_mac, self.ru_mac), "du")
        assert len(self.ru_rx) == 1
        assert not self.du_rx

    def test_unknown_mac_dies(self):
        self.switch.inject(packet(self.du_mac, MacAddress.from_int(99)), "du")
        assert not self.ru_rx and not self.du_rx

    def test_duplicate_port_rejected(self):
        with pytest.raises(ValueError):
            self.switch.attach("du", PortRole.DU, [MacAddress.from_int(5)],
                               lambda p: None)

    def test_interposition_steers_through_middlebox(self):
        box_rx = []
        self.switch.attach("mb", PortRole.MIDDLEBOX, [], box_rx.append)
        self.switch.interpose("mb", [self.ru_mac])
        self.switch.inject(packet(self.du_mac, self.ru_mac), "du")
        assert len(box_rx) == 1
        assert not self.ru_rx  # middlebox holds it
        # Middlebox re-injects; now it reaches the RU.
        self.switch.inject(box_rx[0], "mb")
        assert len(self.ru_rx) == 1

    def test_chained_interpositions_in_order(self):
        first_rx, second_rx = [], []
        self.switch.attach("mb1", PortRole.MIDDLEBOX, [], first_rx.append)
        self.switch.attach("mb2", PortRole.MIDDLEBOX, [], second_rx.append)
        self.switch.interpose("mb1", [self.ru_mac])
        self.switch.interpose("mb2", [self.ru_mac])
        self.switch.inject(packet(self.du_mac, self.ru_mac), "du")
        assert first_rx and not second_rx
        self.switch.inject(first_rx[0], "mb1")
        assert second_rx and not self.ru_rx
        self.switch.inject(second_rx[0], "mb2")
        assert self.ru_rx

    def test_double_interpose_rejected(self):
        self.switch.attach("mb", PortRole.MIDDLEBOX, [], lambda p: None)
        self.switch.interpose("mb", [self.ru_mac])
        with pytest.raises(ValueError):
            self.switch.interpose("mb", [self.ru_mac])

    def test_interpose_unknown_port_rejected(self):
        with pytest.raises(KeyError):
            self.switch.interpose("ghost", [self.ru_mac])

    def test_byte_counters(self):
        frame = packet(self.du_mac, self.ru_mac)
        self.switch.inject(frame, "du")
        assert self.switch.port("du").tx_bytes == frame.wire_size
        assert self.switch.port("ru").rx_bytes == frame.wire_size

    def test_loop_guard(self):
        self.switch.attach(
            "loop", PortRole.MIDDLEBOX, [],
            lambda p: self.switch.inject(p, "du", _hops=99),
        )
        self.switch.interpose("loop", [self.ru_mac])
        with pytest.raises(SwitchLoopError):
            self.switch.inject(packet(self.du_mac, self.ru_mac), "du")


class TestMiddleboxChain:
    def test_downlink_order_uplink_reversed(self, du_mac, ru_mac):
        first, second = Tagger(name="first"), Tagger(name="second")
        chain = MiddleboxChain([first, second])
        order = []
        first.on_cplane = lambda ctx, p: (order.append("first"), ctx.forward(p))
        second.on_cplane = lambda ctx, p: (order.append("second"),
                                           ctx.forward(p))
        chain.process_downlink([packet(du_mac, ru_mac)])
        assert order == ["first", "second"]
        order.clear()
        chain.process_uplink([packet(ru_mac, du_mac)])
        assert order == ["second", "first"]

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            MiddleboxChain([])

    def test_total_processing(self, du_mac, ru_mac):
        chain = MiddleboxChain([Tagger(), Tagger()])
        chain.process_downlink([packet(du_mac, ru_mac)])
        assert chain.total_processing_ns() > 0
