"""Tests for the four RANBooster actions (A1-A4)."""

import numpy as np
import pytest

from repro.core.actions import (
    ActionContext,
    ActionKind,
    PacketCache,
)
from repro.fronthaul.cplane import CPlaneMessage, CPlaneSection, Direction
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.packet import make_packet
from repro.fronthaul.timing import SymbolTime
from repro.fronthaul.uplane import UPlaneMessage, UPlaneSection

from tests.conftest import random_prb_samples


@pytest.fixture
def ctx():
    return ActionContext(PacketCache())


def make_uplane(rng, du_mac, ru_mac, n_prbs=6, start_prb=0,
                direction=Direction.UPLINK, amplitude=4000):
    section = UPlaneSection.from_samples(
        section_id=0, start_prb=start_prb,
        samples=random_prb_samples(rng, n_prbs, amplitude),
    )
    message = UPlaneMessage(
        direction=direction, time=SymbolTime(0, 0, 0, 5), sections=[section]
    )
    return make_packet(du_mac, ru_mac, message)


def make_cplane(du_mac, ru_mac, num_prb=106):
    message = CPlaneMessage(
        direction=Direction.DOWNLINK,
        time=SymbolTime(0, 0, 0, 0),
        sections=[CPlaneSection(section_id=0, start_prb=0, num_prb=num_prb)],
    )
    return make_packet(du_mac, ru_mac, message)


class TestA1Routing:
    def test_forward_rewrites_dst(self, ctx, rng, du_mac, ru_mac):
        packet = make_uplane(rng, du_mac, ru_mac)
        new_dst = MacAddress.from_int(0xBEEF)
        ctx.forward(packet, dst=new_dst)
        assert len(ctx.emissions) == 1
        assert ctx.emissions[0].packet.eth.dst == new_dst
        assert ctx.trace.kinds() == [ActionKind.ROUTE]

    def test_forward_without_rewrite(self, ctx, rng, du_mac, ru_mac):
        packet = make_uplane(rng, du_mac, ru_mac)
        ctx.forward(packet)
        assert ctx.emissions[0].packet.eth.dst == ru_mac

    def test_drop_emits_nothing(self, ctx, rng, du_mac, ru_mac):
        ctx.drop(make_uplane(rng, du_mac, ru_mac))
        assert ctx.emissions == []
        assert ctx.trace.kinds() == [ActionKind.DROP]

    def test_route_runs_in_kernel(self, ctx, rng, du_mac, ru_mac):
        ctx.forward(make_uplane(rng, du_mac, ru_mac))
        assert not ctx.trace.needs_userspace()


class TestA2Replication:
    def test_replicate_count(self, ctx, rng, du_mac, ru_mac):
        packet = make_uplane(rng, du_mac, ru_mac)
        copies = ctx.replicate(packet, 3)
        assert len(copies) == 3

    def test_copies_are_independent(self, ctx, rng, du_mac, ru_mac):
        packet = make_uplane(rng, du_mac, ru_mac)
        copies = ctx.replicate(packet, 1)
        copies[0].eth.dst = MacAddress.from_int(1)
        assert packet.eth.dst != copies[0].eth.dst

    def test_cost_scales_with_copies(self, rng, du_mac, ru_mac):
        packet = make_uplane(rng, du_mac, ru_mac)
        cheap = ActionContext(PacketCache())
        cheap.replicate(packet, 1)
        costly = ActionContext(PacketCache())
        costly.replicate(packet, 4)
        assert costly.trace.total_ns() == pytest.approx(
            4 * cheap.trace.total_ns()
        )

    def test_negative_copies_rejected(self, ctx, rng, du_mac, ru_mac):
        with pytest.raises(ValueError):
            ctx.replicate(make_uplane(rng, du_mac, ru_mac), -1)


class TestA3Caching:
    def test_put_and_pop(self, ctx, rng, du_mac, ru_mac):
        packet = make_uplane(rng, du_mac, ru_mac)
        key = packet.flow_key()
        assert ctx.cache_put(key, packet, tag="ru1") == 1
        assert ctx.cache_put(key, packet.clone(), tag="ru2") == 2
        entries = ctx.cache_pop_all(key)
        assert [tag for tag, _ in entries] == ["ru1", "ru2"]
        assert ctx.cache_pop_all(key) == []

    def test_occupancy_and_tags(self, rng, du_mac, ru_mac):
        cache = PacketCache()
        packet = make_uplane(rng, du_mac, ru_mac)
        cache.put("k", packet, tag="a")
        assert cache.occupancy("k") == 1
        assert cache.tags("k") == ["a"]
        assert cache.occupancy("other") == 0

    def test_peek_does_not_remove(self, ctx, rng, du_mac, ru_mac):
        packet = make_uplane(rng, du_mac, ru_mac)
        ctx.cache_put("k", packet)
        assert len(ctx.cache_peek("k")) == 1
        assert len(ctx.cache_peek("k")) == 1

    def test_len_counts_all_keys(self, rng, du_mac, ru_mac):
        cache = PacketCache()
        cache.put("a", make_uplane(rng, du_mac, ru_mac))
        cache.put("b", make_uplane(rng, du_mac, ru_mac))
        cache.put("b", make_uplane(rng, du_mac, ru_mac))
        assert len(cache) == 3

    def test_caching_needs_userspace(self, ctx, rng, du_mac, ru_mac):
        ctx.cache_put("k", make_uplane(rng, du_mac, ru_mac))
        assert ctx.trace.needs_userspace()


class TestA4HeaderModification:
    def test_set_ru_port(self, ctx, rng, du_mac, ru_mac):
        packet = make_uplane(rng, du_mac, ru_mac)
        ctx.set_ru_port(packet, 3)
        assert packet.eaxc.ru_port == 3
        assert ActionKind.HEADER_MODIFY in ctx.trace.kinds()

    def test_set_cplane_num_prb(self, ctx, du_mac, ru_mac):
        packet = make_cplane(du_mac, ru_mac, num_prb=106)
        ctx.set_cplane_num_prb(packet, 273)
        assert packet.message.sections[0].num_prb == 273
        assert packet.message.sections[0].start_prb == 0

    def test_num_prb_widening_rejects_uplane(self, ctx, rng, du_mac, ru_mac):
        with pytest.raises(ValueError):
            ctx.set_cplane_num_prb(make_uplane(rng, du_mac, ru_mac), 273)

    def test_set_section_fields(self, ctx, du_mac, ru_mac):
        packet = make_cplane(du_mac, ru_mac)
        ctx.set_section_fields(packet, section_id=42, beam_id=7)
        assert packet.message.sections[0].section_id == 42
        assert packet.message.sections[0].beam_id == 7

    def test_set_unknown_field_raises(self, ctx, du_mac, ru_mac):
        with pytest.raises(AttributeError):
            ctx.set_section_fields(make_cplane(du_mac, ru_mac), bogus=1)

    def test_header_modify_stays_in_kernel(self, ctx, rng, du_mac, ru_mac):
        packet = make_uplane(rng, du_mac, ru_mac)
        ctx.set_ru_port(packet, 1)
        ctx.forward(packet)
        assert not ctx.trace.needs_userspace()


class TestA4IqOperations:
    def test_read_exponents(self, ctx, rng, du_mac, ru_mac):
        packet = make_uplane(rng, du_mac, ru_mac)
        exponents = ctx.read_exponents(packet.message.sections[0])
        assert len(exponents) == 6
        assert ActionKind.READ_EXPONENTS in ctx.trace.kinds()
        assert not ctx.trace.needs_userspace()

    def test_merge_iq_sums_samples(self, ctx, rng, du_mac, ru_mac):
        a = make_uplane(rng, du_mac, ru_mac).message.sections[0]
        b = make_uplane(rng, du_mac, ru_mac).message.sections[0]
        merged = ctx.merge_iq([a, b])
        expected = a.iq_samples().astype(int) + b.iq_samples().astype(int)
        result = merged.iq_samples().astype(int)
        # Equal up to the recompression quantization step.
        step = 1 << int(merged.exponents().max())
        assert np.abs(result - expected).max() <= step

    def test_merge_iq_saturates(self, ctx, rng, du_mac, ru_mac):
        big = np.full((2, 24), 30000, dtype=np.int16)
        section = UPlaneSection.from_samples(0, 0, big)
        merged = ctx.merge_iq([section, section])
        assert merged.iq_samples().max() <= 32767

    def test_merge_misaligned_rejected(self, ctx, rng, du_mac, ru_mac):
        a = make_uplane(rng, du_mac, ru_mac, start_prb=0).message.sections[0]
        b = make_uplane(rng, du_mac, ru_mac, start_prb=6).message.sections[0]
        with pytest.raises(ValueError):
            ctx.merge_iq([a, b])

    def test_merge_empty_rejected(self, ctx):
        with pytest.raises(ValueError):
            ctx.merge_iq([])

    def test_merge_cost_grows_with_operands(self, rng, du_mac, ru_mac):
        sections = [
            make_uplane(rng, du_mac, ru_mac).message.sections[0]
            for _ in range(4)
        ]
        two = ActionContext(PacketCache())
        two.merge_iq(sections[:2])
        four = ActionContext(PacketCache())
        four.merge_iq(sections)
        assert four.trace.total_ns() > two.trace.total_ns()

    def test_copy_prbs_aligned_moves_wire_bytes(self, ctx, rng, du_mac, ru_mac):
        source = make_uplane(rng, du_mac, ru_mac, n_prbs=4).message.sections[0]
        dest = UPlaneSection.from_samples(
            1, 0, np.zeros((12, 24), dtype=np.int16)
        )
        result = ctx.copy_prbs(source, dest, source_start_prb=0,
                               dest_start_prb=5, num_prb=4)
        assert result.prb_payload(5) == source.prb_payload(0)
        assert result.prb_payload(8) == source.prb_payload(3)
        # Non-copied PRBs untouched.
        assert result.prb_payload(0) == dest.prb_payload(0)

    def test_copy_prbs_aligned_bounds_checked(self, ctx, rng, du_mac, ru_mac):
        source = make_uplane(rng, du_mac, ru_mac, n_prbs=4).message.sections[0]
        dest = UPlaneSection.from_samples(
            1, 0, np.zeros((6, 24), dtype=np.int16)
        )
        with pytest.raises(ValueError):
            ctx.copy_prbs(source, dest, 0, 4, 4)

    def test_copy_prbs_misaligned_costs_more(self, rng, du_mac, ru_mac):
        source = make_uplane(rng, du_mac, ru_mac, n_prbs=4).message.sections[0]
        dest = UPlaneSection.from_samples(
            1, 0, np.zeros((12, 24), dtype=np.int16)
        )
        aligned = ActionContext(PacketCache())
        aligned.copy_prbs(source, dest, 0, 5, 4, aligned=True)
        misaligned = ActionContext(PacketCache())
        misaligned.copy_prbs(source, dest, 0, 5, 4, aligned=False)
        assert misaligned.trace.total_ns() > 3 * aligned.trace.total_ns()

    def test_iq_operations_need_userspace(self, ctx, rng, du_mac, ru_mac):
        section = make_uplane(rng, du_mac, ru_mac).message.sections[0]
        ctx.decompress(section)
        assert ctx.trace.needs_userspace()


class TestA4BatchedAlignedCopies:
    """extract_prbs / assemble_prbs: the batched RU-sharing fast paths."""

    def test_extract_prbs_matches_copy_prbs(self, ctx, rng):
        samples = random_prb_samples(rng, 12)
        source = UPlaneSection.from_samples(0, 0, samples)
        extracted = ctx.extract_prbs(
            source, source_start_prb=3, num_prb=5, section_id=7
        )
        # Equivalent slow path: zero target + aligned copy_prbs.
        target = UPlaneSection.from_samples(
            7, 0, np.zeros((5, 24), dtype=np.int16)
        )
        copied = ctx.copy_prbs(source, target, 3, 0, 5, aligned=True)
        assert extracted.payload_bytes() == copied.payload_bytes()
        assert extracted.section_id == 7
        assert extracted.num_prb == 5

    def test_extract_prbs_is_zero_copy(self, ctx, rng):
        source = UPlaneSection.from_samples(0, 0, random_prb_samples(rng, 8))
        extracted = ctx.extract_prbs(source, 2, 3, section_id=1)
        assert isinstance(extracted.payload, memoryview)
        assert ActionKind.PRB_COPY in ctx.trace.kinds()

    def test_extract_prbs_bounds_checked(self, ctx, rng):
        source = UPlaneSection.from_samples(0, 0, random_prb_samples(rng, 4))
        with pytest.raises(ValueError):
            ctx.extract_prbs(source, 2, 5, section_id=1)

    def test_assemble_prbs_matches_sequential_copies(self, ctx, rng):
        a = UPlaneSection.from_samples(0, 0, random_prb_samples(rng, 4))
        b = UPlaneSection.from_samples(0, 0, random_prb_samples(rng, 3))
        assembled = ctx.assemble_prbs(
            num_prb=10,
            placements=[(a, 0), (b, 6)],
            compression=a.compression,
        )
        # Slow equivalent: zero target + two aligned copy_prbs.
        target = UPlaneSection.from_samples(
            0, 0, np.zeros((10, 24), dtype=np.int16)
        )
        target = ctx.copy_prbs(a, target, 0, 0, 4, aligned=True)
        target = ctx.copy_prbs(b, target, 0, 6, 3, aligned=True)
        assert assembled.payload_bytes() == target.payload_bytes()
        # Gap PRBs are idle: exponent 0.
        assert (assembled.exponents()[4:6] == 0).all()

    def test_assemble_prbs_records_per_placement_cost(self, rng):
        ctx = ActionContext(PacketCache())
        a = UPlaneSection.from_samples(0, 0, random_prb_samples(rng, 2))
        b = UPlaneSection.from_samples(0, 0, random_prb_samples(rng, 2))
        ctx.assemble_prbs(6, [(a, 0), (b, 2)], a.compression)
        kinds = ctx.trace.kinds()
        assert kinds.count(ActionKind.PRB_COPY) == 2

    def test_assemble_prbs_rejects_overflow(self, ctx, rng):
        a = UPlaneSection.from_samples(0, 0, random_prb_samples(rng, 4))
        with pytest.raises(ValueError):
            ctx.assemble_prbs(5, [(a, 3)], a.compression)

    def test_merge_iq_rejects_mixed_compression(self, ctx, rng):
        from repro.fronthaul.compression import CompressionConfig

        samples = random_prb_samples(rng, 3)
        a = UPlaneSection.from_samples(0, 0, samples)
        b = UPlaneSection.from_samples(
            0, 0, samples, compression=CompressionConfig(iq_width=14)
        )
        with pytest.raises(ValueError, match="mixed compression"):
            ctx.merge_iq([a, b])

    def test_merge_iq_works_on_view_backed_sections(self, ctx, rng, du_mac,
                                                    ru_mac):
        """Merging sections parsed zero-copy from wire frames (the real
        DAS uplink input) must behave like merging owned-bytes sections."""
        from repro.fronthaul.packet import parse_packet

        packets = [
            make_uplane(rng, du_mac, ru_mac, n_prbs=5) for _ in range(3)
        ]
        parsed_sections = [
            parse_packet(p.pack()).message.sections[0] for p in packets
        ]
        owned_sections = [p.message.sections[0] for p in packets]
        via_views = ctx.merge_iq(parsed_sections)
        via_owned = ctx.merge_iq(owned_sections)
        assert via_views.payload_bytes() == via_owned.payload_bytes()
