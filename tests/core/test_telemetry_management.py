"""Telemetry bus and management interface tests."""

import pytest

from repro.core.management import (
    ForwardingRule,
    ManagementInterface,
    ValidationError,
)
from repro.core.telemetry import TelemetryBus
from repro.fronthaul.ethernet import MacAddress


class TestTelemetryBus:
    def test_publish_and_latest(self):
        bus = TelemetryBus()
        bus.publish("util", 0.5, timestamp_ns=10)
        bus.publish("util", 0.7, timestamp_ns=20)
        assert bus.latest("util").payload == 0.7
        assert [r.payload for r in bus.history("util")] == [0.5, 0.7]

    def test_subscribe_callback(self):
        bus = TelemetryBus()
        seen = []
        bus.subscribe("util", lambda record: seen.append(record.payload))
        bus.publish("util", 1)
        bus.publish("other", 2)
        assert seen == [1]

    def test_latest_empty_raises(self):
        with pytest.raises(KeyError):
            TelemetryBus().latest("nothing")

    def test_history_bounded(self):
        bus = TelemetryBus(history_limit=10)
        for i in range(25):
            bus.publish("t", i)
        history = bus.history("t")
        assert len(history) == 10
        assert history[-1].payload == 24

    def test_topics_listing(self):
        bus = TelemetryBus()
        bus.publish("b", 1)
        bus.publish("a", 1)
        assert bus.topics() == ["a", "b"]

    def test_source_attribution(self):
        bus = TelemetryBus()
        bus.publish("t", 1, source="das-1")
        assert bus.latest("t").source == "das-1"

    def test_history_trims_oldest_first(self):
        bus = TelemetryBus(history_limit=3)
        for i in range(5):
            bus.publish("t", i)
        assert [r.payload for r in bus.history("t")] == [2, 3, 4]

    def test_history_limit_validated(self):
        with pytest.raises(ValueError):
            TelemetryBus(history_limit=0)

    def test_unsubscribe_stops_delivery(self):
        bus = TelemetryBus()
        seen = []
        callback = seen.append
        bus.subscribe("t", callback)
        bus.publish("t", 1)
        bus.unsubscribe("t", callback)
        bus.publish("t", 2)
        assert [r.payload for r in seen] == [1]

    def test_unsubscribe_unknown_callback_raises(self):
        bus = TelemetryBus()
        with pytest.raises(ValueError, match="not subscribed"):
            bus.unsubscribe("t", lambda record: None)

    def test_unsubscribe_removes_one_registration(self):
        bus = TelemetryBus()
        seen = []
        callback = seen.append
        bus.subscribe("t", callback)
        bus.subscribe("t", callback)
        bus.unsubscribe("t", callback)
        bus.publish("t", 1)
        assert len(seen) == 1


class TestManagementInterface:
    def test_declare_get_set(self):
        mgmt = ManagementInterface("box")
        mgmt.declare("threshold", 2)
        assert mgmt.get("threshold") == 2
        mgmt.set("threshold", 5)
        assert mgmt.get("threshold") == 5

    def test_unknown_key_raises(self):
        mgmt = ManagementInterface()
        with pytest.raises(KeyError):
            mgmt.get("nope")
        with pytest.raises(KeyError):
            mgmt.set("nope", 1)

    def test_validator_rejects(self):
        mgmt = ManagementInterface()
        mgmt.declare("threshold", 2, validator=lambda v: 0 <= v <= 15)
        with pytest.raises(ValidationError):
            mgmt.set("threshold", 99)
        assert mgmt.get("threshold") == 2

    def test_change_listener(self):
        mgmt = ManagementInterface()
        mgmt.declare("k", 1)
        changes = []
        mgmt.on_change(lambda key, value: changes.append((key, value)))
        mgmt.set("k", 2)
        assert changes == [("k", 2)]

    def test_keys_sorted(self):
        mgmt = ManagementInterface()
        mgmt.declare("b", 1)
        mgmt.declare("a", 1)
        assert mgmt.keys() == ["a", "b"]

    def test_forwarding_rules(self):
        mgmt = ManagementInterface()
        old = MacAddress.from_int(1)
        new = MacAddress.from_int(2)
        mgmt.add_rule(ForwardingRule(match_dst=old, new_dst=new))
        assert mgmt.resolve(old) == new
        assert mgmt.resolve(new) == new  # identity when no match

    def test_disabled_rule_skipped(self):
        mgmt = ManagementInterface()
        old = MacAddress.from_int(1)
        mgmt.add_rule(
            ForwardingRule(match_dst=old, new_dst=MacAddress.from_int(2),
                           enabled=False)
        )
        assert mgmt.resolve(old) == old

    def test_clear_rules(self):
        mgmt = ManagementInterface()
        mgmt.add_rule(
            ForwardingRule(MacAddress.from_int(1), MacAddress.from_int(2))
        )
        mgmt.clear_rules()
        assert mgmt.rules == []
