"""Middlebox template tests."""


from repro.core.middlebox import Middlebox, classify
from repro.fronthaul.cplane import CPlaneMessage, CPlaneSection, Direction
from repro.fronthaul.packet import make_packet
from repro.fronthaul.timing import SymbolTime
from repro.fronthaul.uplane import UPlaneMessage, UPlaneSection

from tests.conftest import random_prb_samples


def uplane(rng, du_mac, ru_mac, direction=Direction.DOWNLINK):
    section = UPlaneSection.from_samples(
        0, 0, random_prb_samples(rng, 4)
    )
    return make_packet(
        du_mac, ru_mac,
        UPlaneMessage(direction=direction, time=SymbolTime(0, 0, 0, 0),
                      sections=[section]),
    )


def cplane(du_mac, ru_mac, direction=Direction.DOWNLINK):
    return make_packet(
        du_mac, ru_mac,
        CPlaneMessage(direction=direction, time=SymbolTime(0, 0, 0, 0),
                      sections=[CPlaneSection(0, 0, 106)]),
    )


class DroppingBox(Middlebox):
    app_name = "dropper"

    def on_uplane(self, ctx, packet):
        ctx.drop(packet)


class TestPassthrough:
    def test_default_forwards_everything(self, rng, du_mac, ru_mac):
        box = Middlebox()
        for packet in (uplane(rng, du_mac, ru_mac), cplane(du_mac, ru_mac)):
            result = box.process(packet)
            assert len(result.emissions) == 1
            assert result.emissions[0].packet is packet
        assert box.stats.rx_packets == 2
        assert box.stats.tx_packets == 2
        assert box.stats.dropped_packets == 0

    def test_empty_subclass_is_valid(self):
        class Nothing(Middlebox):
            app_name = "noop"

        assert Nothing().name == "noop"

    def test_named_instance(self):
        assert Middlebox(name="my-box").name == "my-box"


class TestProcessing:
    def test_drop_counted(self, rng, du_mac, ru_mac):
        box = DroppingBox()
        result = box.process(uplane(rng, du_mac, ru_mac))
        assert result.emissions == []
        assert box.stats.dropped_packets == 1

    def test_traces_accumulate(self, rng, du_mac, ru_mac):
        box = Middlebox()
        for _ in range(3):
            box.process(uplane(rng, du_mac, ru_mac))
        assert len(box.traces) == 3
        assert len(box.trace_wire_bytes) == 3
        assert box.stats.processing_ns_total > 0

    def test_traffic_classification(self, rng, du_mac, ru_mac):
        assert classify(uplane(rng, du_mac, ru_mac)) == "DL U-Plane"
        assert classify(
            uplane(rng, du_mac, ru_mac, Direction.UPLINK)
        ) == "UL U-Plane"
        assert classify(cplane(du_mac, ru_mac)) == "DL C-Plane"
        assert classify(
            cplane(du_mac, ru_mac, Direction.UPLINK)
        ) == "UL C-Plane"

    def test_traces_by_class(self, rng, du_mac, ru_mac):
        box = Middlebox()
        box.process(uplane(rng, du_mac, ru_mac))
        box.process(cplane(du_mac, ru_mac))
        assert set(box.traces_by_class) == {"DL U-Plane", "DL C-Plane"}

    def test_process_burst_flattens(self, rng, du_mac, ru_mac):
        box = Middlebox()
        packets = [uplane(rng, du_mac, ru_mac) for _ in range(4)]
        assert len(box.process_burst(packets)) == 4

    def test_reset_traces(self, rng, du_mac, ru_mac):
        box = Middlebox()
        box.process(uplane(rng, du_mac, ru_mac))
        box.reset_traces()
        assert box.traces == []
        assert box.traces_by_class == {}
        assert box.stats.processing_ns_total == 0.0

    def test_byte_accounting(self, rng, du_mac, ru_mac):
        box = Middlebox()
        packet = uplane(rng, du_mac, ru_mac)
        box.process(packet)
        assert box.stats.rx_bytes == packet.wire_size
        assert box.stats.tx_bytes == packet.wire_size

    def test_telemetry_and_management_exist(self):
        box = Middlebox()
        box.telemetry.publish("t", 1)
        assert box.telemetry.latest("t").payload == 1
        assert box.management.owner == box.name
