"""DPDK/XDP datapath model and latency cost model tests."""

import pytest

from repro.core.actions import ActionKind, ActionTrace
from repro.core.datapath import (
    DpdkDatapath,
    PacketWork,
    XdpDatapath,
    cores_required,
    deadline_violated,
)
from repro.core.latency import DEFAULT_COST_MODEL


def trace_of(*kinds_costs):
    trace = ActionTrace()
    for kind, cost in kinds_costs:
        trace.record(kind, cost)
    return trace


def kernel_work(wire_bytes=1000):
    return PacketWork(
        trace=trace_of((ActionKind.ROUTE, 50.0),
                       (ActionKind.HEADER_MODIFY, 60.0)),
        wire_bytes=wire_bytes,
    )


def userspace_work(wire_bytes=3000):
    return PacketWork(
        trace=trace_of((ActionKind.CACHE_PUT, 180.0),
                       (ActionKind.IQ_MERGE, 5000.0)),
        wire_bytes=wire_bytes,
    )


class TestCostModel:
    def test_merge_cost_calibration(self):
        """Figure 15b: merges take ~4 us at 2 operands, ~6 us at 4."""
        cost = DEFAULT_COST_MODEL
        assert 3_000 < cost.merge_cost(273, 2) < 4_500
        assert 5_000 < cost.merge_cost(273, 4) < 7_000

    def test_merge_cost_monotonic(self):
        cost = DEFAULT_COST_MODEL
        values = [cost.merge_cost(273, n) for n in range(1, 7)]
        assert values == sorted(values)

    def test_merge_requires_operand(self):
        with pytest.raises(ValueError):
            DEFAULT_COST_MODEL.merge_cost(273, 0)

    def test_per_slot_das_budget_calibration(self):
        """Section 6.4.1: four 4x4 100 MHz RUs -> ~26 us per slot."""
        cost = DEFAULT_COST_MODEL
        per_slot = (
            12 * cost.cache_ns
            + 4 * cost.cache_lookup_ns
            + 4 * cost.merge_cost(273, 4)
        )
        assert 24_000 < per_slot < 28_000

    def test_misaligned_copy_pays_codec(self):
        cost = DEFAULT_COST_MODEL
        assert cost.prb_copy_cost(106, aligned=False) > (
            cost.prb_copy_cost(106, aligned=True)
            + cost.decompress_cost(106)
        )

    def test_forwarding_under_300ns(self):
        """Figure 15b: DL forwarding paths stay under 300 ns."""
        cost = DEFAULT_COST_MODEL
        das_dl_4rus = 3 * cost.replicate_ns_per_copy + 4 * cost.forward_ns
        assert das_dl_4rus < 300


class TestDpdk:
    def test_packet_time_is_trace_sum(self):
        assert DpdkDatapath().packet_time_ns(kernel_work()) == 110.0

    def test_utilization_always_full(self):
        datapath = DpdkDatapath()
        assert datapath.cpu_utilization([], 1e9) == 1.0
        assert datapath.cpu_utilization([kernel_work()], 1e9) == 1.0

    def test_busy_fraction_tracks_load(self):
        datapath = DpdkDatapath()
        light = datapath.busy_fraction([kernel_work()] * 10, 1e6)
        heavy = datapath.busy_fraction([kernel_work()] * 1000, 1e6)
        assert heavy > light

    def test_requires_core(self):
        with pytest.raises(ValueError):
            DpdkDatapath().cpu_utilization([], 1e9, cores=0)


class TestXdp:
    def test_kernel_only_cheaper_than_userspace(self):
        datapath = XdpDatapath()
        assert datapath.packet_time_ns(kernel_work()) < datapath.packet_time_ns(
            userspace_work()
        )

    def test_userspace_pays_af_xdp(self):
        datapath = XdpDatapath()
        o = datapath.overheads
        time_ns = datapath.packet_time_ns(userspace_work())
        assert time_ns >= (
            o.interrupt_ns + o.af_xdp_redirect_ns + o.wakeup_syscall_ns
        )

    def test_jumbo_penalty(self):
        datapath = XdpDatapath()
        small = datapath.packet_time_ns(kernel_work(wire_bytes=1000))
        jumbo = datapath.packet_time_ns(kernel_work(wire_bytes=8000))
        assert jumbo > small

    def test_jumbo_frames_unsupported(self):
        """Section 6.4.1: the XDP build only handles smaller bandwidths —
        100 MHz frames exceed the supported size."""
        datapath = XdpDatapath()
        assert datapath.supports_frame(3_000)
        assert not datapath.supports_frame(7_700)

    def test_utilization_scales_with_traffic(self):
        datapath = XdpDatapath()
        idle = datapath.cpu_utilization([kernel_work()] * 5, 1e9)
        busy = datapath.cpu_utilization([kernel_work()] * 5000, 1e9)
        assert idle < busy <= 1.0

    def test_utilization_capped(self):
        datapath = XdpDatapath()
        assert datapath.cpu_utilization([userspace_work()] * 10**6, 1e6) == 1.0


class TestDeadlines:
    def test_cores_required_fig15a(self):
        """One core up to ~30 us; two beyond (Figure 15a)."""
        assert cores_required(26_000) == 1
        assert cores_required(31_000) == 2
        assert cores_required(65_000) == 3

    def test_zero_work_one_core(self):
        assert cores_required(0) == 1

    def test_deadline_violated(self):
        assert deadline_violated(31_000, cores=1)
        assert not deadline_violated(31_000, cores=2)

    def test_deadline_needs_core(self):
        with pytest.raises(ValueError):
            deadline_violated(1000, cores=0)
